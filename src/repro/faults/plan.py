"""Declarative fault schedules: what breaks, when, for how long.

A :class:`FaultPlan` is an ordered list of :class:`FaultSpec` entries,
each keyed to simulated time.  The plan is pure data — building one
touches no world — so the same plan can drive many seeds, be serialised
into a run report's params, or be checked into a benchmark.  Injection
(kernel processes, RNG streams, metric/span emission) lives in
:mod:`repro.faults.injectors`; assembling plan + workload + recovery
invariants lives in :mod:`repro.faults.chaos`.

Fault kinds (see docs/ROBUSTNESS.md for the model):

* ``link_flap``     — targets' interfaces go down for ``duration``;
* ``crash``         — targets crash; with ``duration > 0`` they
  restart that many seconds later (churn = repeated crashes);
* ``partition``     — cross-``groups`` links are severed for
  ``duration``, then heal;
* ``drop``          — window forcing extra message loss at ``rate``;
* ``duplicate``     — window delivering a second copy of messages at
  ``rate``, ``extra_latency_s`` later (the stale-reply reproducer);
* ``delay``         — window adding ``extra_latency_s`` to deliveries
  at ``rate`` (a latency spike; at partial rate it also reorders);
* ``corrupt``       — window marking delivered payloads corrupted at
  ``rate`` (receivers checksum-discard them);
* ``hostile_guest`` — a named hostile guest body (quota-exhaustion
  loop, scratch-storage bomb, service-flood confused deputy; see
  :data:`repro.faults.hostile.HOSTILE_GUESTS`) is launched into each
  target host's sandbox-provider substrate at ``at``.

Message-window faults (`drop`/`duplicate`/`delay`/`corrupt`) accept
``targets`` (destination node ids; empty = every node) and
``message_kinds`` (glob patterns over the message kind; empty = every
kind) to scope the blast radius.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from fnmatch import fnmatchcase
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Faults that act on scheduled windows of message traffic.
MESSAGE_FAULT_KINDS = ("drop", "duplicate", "delay", "corrupt")
#: Faults that act on topology (nodes, interfaces, reachability).
TOPOLOGY_FAULT_KINDS = ("link_flap", "crash", "partition")
#: Faults that launch hostile guest code into target hosts' sandboxes.
GUEST_FAULT_KINDS = ("hostile_guest",)
FAULT_KINDS = TOPOLOGY_FAULT_KINDS + MESSAGE_FAULT_KINDS + GUEST_FAULT_KINDS


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.  Prefer the :class:`FaultPlan` builders."""

    kind: str
    at: float
    duration: float = 0.0
    #: Node ids the fault applies to (semantics vary per kind; empty
    #: means "every message" for message faults).
    targets: Tuple[str, ...] = ()
    #: For ``partition``: the connectivity islands.  Nodes not listed
    #: in any group keep full connectivity.
    groups: Tuple[Tuple[str, ...], ...] = ()
    #: For message faults: per-message probability of applying.
    rate: float = 1.0
    #: Extra delivery latency (``delay``/``duplicate``), seconds.
    extra_latency_s: float = 0.0
    #: For ``link_flap``: restrict to one technology name (None = all).
    technology: Optional[str] = None
    #: Glob patterns over message kinds; empty = match all.
    message_kinds: Tuple[str, ...] = ()
    #: Occurrences: the fault re-fires ``repeat`` times, ``period``
    #: seconds apart (period must cover the duration).
    repeat: int = 1
    period: float = 0.0
    #: For ``hostile_guest``: the guest body's registered name (see
    #: :data:`repro.faults.hostile.HOSTILE_GUESTS`).
    guest: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} (one of {FAULT_KINDS})"
            )
        if self.at < 0:
            raise ValueError(f"fault scheduled in the past (at={self.at})")
        if self.duration < 0:
            raise ValueError(f"negative duration {self.duration}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate {self.rate} outside [0, 1]")
        if self.extra_latency_s < 0:
            raise ValueError(f"negative latency {self.extra_latency_s}")
        if self.repeat < 1:
            raise ValueError(f"repeat {self.repeat} must be >= 1")
        if self.repeat > 1 and self.period < self.duration:
            raise ValueError(
                f"period {self.period} shorter than duration "
                f"{self.duration}: occurrences would overlap themselves"
            )
        if self.kind == "partition" and len(self.groups) < 2:
            raise ValueError("a partition needs at least two groups")
        if self.kind in ("link_flap", "crash") and not self.targets:
            raise ValueError(f"{self.kind} needs at least one target node")
        if self.kind == "hostile_guest":
            if not self.targets:
                raise ValueError(
                    "hostile_guest needs at least one target node"
                )
            from .hostile import HOSTILE_GUESTS

            if self.guest not in HOSTILE_GUESTS:
                raise ValueError(
                    f"unknown hostile guest {self.guest!r} "
                    f"(one of {sorted(HOSTILE_GUESTS)})"
                )

    def window(self, occurrence: int) -> Tuple[float, float]:
        """``(start, end)`` of the given occurrence (0-based)."""
        start = self.at + occurrence * self.period
        return start, start + self.duration

    def matches(self, destination_id: str, message_kind: str) -> bool:
        """True when a message fault applies to this delivery."""
        if self.targets and destination_id not in self.targets:
            return False
        if self.message_kinds and not any(
            fnmatchcase(message_kind, pattern) for pattern in self.message_kinds
        ):
            return False
        return True

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {"kind": self.kind, "at": self.at}
        defaults = _SPEC_DEFAULTS
        for name in defaults:
            value = getattr(self, name)
            if value != defaults[name]:
                data[name] = (
                    [list(group) for group in value]
                    if name == "groups"
                    else list(value) if isinstance(value, tuple) else value
                )
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultSpec":
        kwargs = dict(data)
        if "targets" in kwargs:
            kwargs["targets"] = tuple(kwargs["targets"])  # type: ignore[arg-type]
        if "groups" in kwargs:
            kwargs["groups"] = tuple(
                tuple(group) for group in kwargs["groups"]  # type: ignore[union-attr]
            )
        if "message_kinds" in kwargs:
            kwargs["message_kinds"] = tuple(kwargs["message_kinds"])  # type: ignore[arg-type]
        return cls(**kwargs)  # type: ignore[arg-type]


_SPEC_DEFAULTS = {
    "duration": 0.0,
    "targets": (),
    "groups": (),
    "rate": 1.0,
    "extra_latency_s": 0.0,
    "technology": None,
    "message_kinds": (),
    "repeat": 1,
    "period": 0.0,
    "guest": None,
}


class FaultPlan:
    """An ordered, append-only schedule of faults."""

    def __init__(self, faults: Iterable[FaultSpec] = ()) -> None:
        self.faults: List[FaultSpec] = list(faults)

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def __repr__(self) -> str:
        kinds = ", ".join(spec.kind for spec in self.faults)
        return f"<FaultPlan {len(self.faults)} faults: {kinds}>"

    def add(self, spec: FaultSpec) -> "FaultPlan":
        self.faults.append(spec)
        return self

    # -- builders (all return self for chaining) ----------------------------

    def link_flap(
        self,
        targets: Sequence[str],
        at: float,
        down_s: float,
        technology: Optional[str] = None,
        repeat: int = 1,
        period: float = 0.0,
    ) -> "FaultPlan":
        """Take the targets' radios down for ``down_s`` seconds."""
        return self.add(
            FaultSpec(
                kind="link_flap",
                at=at,
                duration=down_s,
                targets=tuple(targets),
                technology=technology,
                repeat=repeat,
                period=period,
            )
        )

    def crash(
        self,
        targets: Sequence[str],
        at: float,
        down_s: float = 0.0,
        repeat: int = 1,
        period: float = 0.0,
    ) -> "FaultPlan":
        """Crash the targets; ``down_s > 0`` restarts them afterwards."""
        return self.add(
            FaultSpec(
                kind="crash",
                at=at,
                duration=down_s,
                targets=tuple(targets),
                repeat=repeat,
                period=period,
            )
        )

    def churn(
        self,
        nodes: Sequence[str],
        start: float,
        period: float,
        down_s: float,
        rounds: int = 1,
    ) -> "FaultPlan":
        """Round-robin crash/restart churn over ``nodes``.

        Every ``period`` seconds the next node (cycling through the
        list for ``rounds`` full cycles) crashes for ``down_s``.
        """
        if down_s <= 0:
            raise ValueError("churned nodes must restart (down_s > 0)")
        for index in range(rounds * len(nodes)):
            node = nodes[index % len(nodes)]
            self.crash([node], at=start + index * period, down_s=down_s)
        return self

    def partition(
        self,
        groups: Sequence[Sequence[str]],
        at: float,
        duration: float,
    ) -> "FaultPlan":
        """Sever links across the groups for ``duration``, then heal."""
        return self.add(
            FaultSpec(
                kind="partition",
                at=at,
                duration=duration,
                groups=tuple(tuple(group) for group in groups),
            )
        )

    def drop(
        self,
        at: float,
        duration: float,
        rate: float,
        targets: Sequence[str] = (),
        message_kinds: Sequence[str] = (),
    ) -> "FaultPlan":
        """Force extra transit loss at ``rate`` during the window."""
        return self.add(
            FaultSpec(
                kind="drop",
                at=at,
                duration=duration,
                rate=rate,
                targets=tuple(targets),
                message_kinds=tuple(message_kinds),
            )
        )

    def duplicate(
        self,
        at: float,
        duration: float,
        rate: float,
        delay_s: float = 0.0,
        targets: Sequence[str] = (),
        message_kinds: Sequence[str] = (),
    ) -> "FaultPlan":
        """Deliver a second copy (``delay_s`` later) at ``rate``."""
        return self.add(
            FaultSpec(
                kind="duplicate",
                at=at,
                duration=duration,
                rate=rate,
                extra_latency_s=delay_s,
                targets=tuple(targets),
                message_kinds=tuple(message_kinds),
            )
        )

    def delay(
        self,
        at: float,
        duration: float,
        extra_s: float,
        rate: float = 1.0,
        targets: Sequence[str] = (),
        message_kinds: Sequence[str] = (),
    ) -> "FaultPlan":
        """Latency spike: add ``extra_s`` to deliveries at ``rate``.

        At ``rate < 1`` delayed messages overtake one another —
        deterministic reordering.
        """
        return self.add(
            FaultSpec(
                kind="delay",
                at=at,
                duration=duration,
                rate=rate,
                extra_latency_s=extra_s,
                targets=tuple(targets),
                message_kinds=tuple(message_kinds),
            )
        )

    def corrupt(
        self,
        at: float,
        duration: float,
        rate: float,
        targets: Sequence[str] = (),
        message_kinds: Sequence[str] = (),
    ) -> "FaultPlan":
        """Damage delivered payloads at ``rate`` (checksum-discarded)."""
        return self.add(
            FaultSpec(
                kind="corrupt",
                at=at,
                duration=duration,
                rate=rate,
                targets=tuple(targets),
                message_kinds=tuple(message_kinds),
            )
        )

    def hostile_guest(
        self,
        targets: Sequence[str],
        at: float,
        guest: str,
        repeat: int = 1,
        period: float = 0.0,
    ) -> "FaultPlan":
        """Launch the named hostile guest into each target's sandbox."""
        return self.add(
            FaultSpec(
                kind="hostile_guest",
                at=at,
                targets=tuple(targets),
                guest=guest,
                repeat=repeat,
                period=period,
            )
        )

    # -- scaling and (de)serialisation --------------------------------------

    def shifted(self, offset: float) -> "FaultPlan":
        """A copy with every fault's schedule moved by ``offset``."""
        return FaultPlan(
            replace(spec, at=spec.at + offset) for spec in self.faults
        )

    def end_time(self) -> float:
        """Sim time at which the last scheduled fault window closes."""
        return max(
            (spec.window(spec.repeat - 1)[1] for spec in self.faults),
            default=0.0,
        )

    def to_dict(self) -> Dict[str, object]:
        return {"faults": [spec.to_dict() for spec in self.faults]}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultPlan":
        return cls(
            FaultSpec.from_dict(item)  # type: ignore[arg-type]
            for item in data.get("faults", ())  # type: ignore[union-attr]
        )

    def inject(self, world) -> "FaultInjector":  # noqa: F821 - forward ref
        """Arm this plan on ``world`` (see :class:`FaultInjector`)."""
        from .injectors import FaultInjector

        return FaultInjector(world, self)
