"""Deterministic fault injection for the simulated middleware.

Declare *what breaks and when* as a :class:`FaultPlan`, arm it on a
world with :meth:`FaultPlan.inject`, and run: link flaps, crash/restart
churn, partitions, and message-level drop/duplicate/delay/corrupt
windows all fire at their scheduled sim-times, driven by dedicated RNG
streams so runs stay bit-reproducible.  :mod:`repro.faults.chaos` adds
the harness that runs a workload under a plan and asserts the stack's
recovery invariants.  See docs/ROBUSTNESS.md.
"""

from .chaos import (
    ChaosOutcome,
    HOSTILE_GRANT,
    build_fleet,
    chaos_job,
    chaos_task,
    hostile_plan,
    hostile_policy,
    resolve_plan_spec,
    run_chaos,
    run_hostile,
    standard_plan,
    standard_slos,
    verify_agent_reroute,
    verify_discovery_recovery,
    verify_hostile_containment,
    verify_local_degradation,
    verify_retry_convergence,
)
from .hostile import HOSTILE_GUESTS, hostile_job
from .injectors import FaultInjector, inject
from .plan import (
    FAULT_KINDS,
    GUEST_FAULT_KINDS,
    MESSAGE_FAULT_KINDS,
    TOPOLOGY_FAULT_KINDS,
    FaultPlan,
    FaultSpec,
)

__all__ = [
    "ChaosOutcome",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "GUEST_FAULT_KINDS",
    "HOSTILE_GRANT",
    "HOSTILE_GUESTS",
    "MESSAGE_FAULT_KINDS",
    "TOPOLOGY_FAULT_KINDS",
    "build_fleet",
    "chaos_job",
    "chaos_task",
    "hostile_job",
    "hostile_plan",
    "hostile_policy",
    "inject",
    "resolve_plan_spec",
    "run_chaos",
    "run_hostile",
    "standard_plan",
    "standard_slos",
    "verify_agent_reroute",
    "verify_discovery_recovery",
    "verify_hostile_containment",
    "verify_local_degradation",
    "verify_retry_convergence",
]
