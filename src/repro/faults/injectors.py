"""Kernel-scheduled execution of a :class:`~repro.faults.plan.FaultPlan`.

The :class:`FaultInjector` arms a plan on a world: one kernel process
per fault spec sleeps until the scheduled sim-time, applies the fault,
and reverts it when the window closes.  Everything is deterministic —
fault timing comes from the plan, and the per-message decisions
(drop/duplicate/delay/corrupt at ``rate``) draw from the dedicated
``faults.messages`` stream, so arming a plan never perturbs the draws
of existing components and two same-seed runs inject identically.

Topology faults act through the same epoch-bumping mutators the rest of
the system uses (``Interface.disable``, ``NetworkNode.crash``,
``Network.set_link_filter``), so every cache layer sees them.  Message
faults act through the transport's ``faults`` hook: ``drops`` is
consulted before the delivery decision (forced loss is retransmittable
— ARQ and pipeline retries can recover), and ``deliver`` owns the
inbox puts after it (delays and duplicates are spawned processes, so
sender and acknowledgement timing are untouched).

Each applied fault increments a ``faults.*`` counter and, when spans
are enabled, wraps the outage window in a ``fault.<kind>`` span.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Tuple

from ..errors import SandboxViolation
from ..net import Message, NetworkNode
from .hostile import HOSTILE_GUESTS
from .plan import MESSAGE_FAULT_KINDS, FaultPlan, FaultSpec


class FaultInjector:
    """Applies a :class:`FaultPlan` to one world, deterministically.

    Construct via :meth:`FaultPlan.inject`.  The injector registers a
    kernel process per spec immediately; nothing fires until the world
    runs.  ``active_faults`` reports how many fault windows are
    currently open (useful for asserting quiescence at scenario end).
    """

    def __init__(self, world, plan: FaultPlan) -> None:
        self.world = world
        self.env = world.env
        self.plan = plan
        self._rng = world.streams.stream("faults.messages")
        #: Open message-fault windows, by kind.
        self._windows: Dict[str, List[FaultSpec]] = {
            kind: [] for kind in MESSAGE_FAULT_KINDS
        }
        #: Open partitions (each a tuple of node-id groups).
        self._partitions: List[Tuple[Tuple[str, ...], ...]] = []
        #: A user-installed link filter to compose with, if any.
        self._base_filter = world.network.link_filter
        self.active_faults = 0
        if any(spec.kind in MESSAGE_FAULT_KINDS for spec in plan):
            world.transport.faults = self
        self.processes = [
            self.env.process(
                self._run_spec(spec), name=f"fault:{spec.kind}@{spec.at:g}"
            )
            for spec in plan
        ]

    # -- schedule driving ----------------------------------------------------

    def _run_spec(self, spec: FaultSpec):
        for occurrence in range(spec.repeat):
            start, _end = spec.window(occurrence)
            if start > self.env.now:
                yield self.env.timeout(start - self.env.now)
            self.active_faults += 1
            self.world.metrics.counter(f"faults.{spec.kind}").increment()
            span = self.world.tracer.start(
                f"fault.{spec.kind}",
                "faults",
                targets=",".join(spec.targets),
                duration=spec.duration,
            )
            try:
                yield from self._apply(spec)
            finally:
                self.active_faults -= 1
                self.world.tracer.finish(span)

    def _apply(self, spec: FaultSpec):
        if spec.kind == "link_flap":
            yield from self._apply_link_flap(spec)
        elif spec.kind == "crash":
            yield from self._apply_crash(spec)
        elif spec.kind == "partition":
            yield from self._apply_partition(spec)
        elif spec.kind == "hostile_guest":
            yield from self._apply_hostile(spec)
        else:
            yield from self._apply_window(spec)

    # -- topology faults -----------------------------------------------------

    def _emit(self, action: str, **data) -> None:
        self.world.trace.emit(self.env.now, "faults", action, **data)

    def _apply_link_flap(self, spec: FaultSpec):
        flapped = []
        for node_id in spec.targets:
            node = self.world.network.node(node_id)
            for interface in node.interfaces.values():
                if spec.technology and interface.technology.name != spec.technology:
                    continue
                if not interface.enabled:
                    continue
                # Remember attachment: disable() detaches, and a plain
                # enable() would leave infrastructure radios dangling.
                flapped.append((interface, interface.attached))
                interface.disable()
        self._emit("fault.link_flap", nodes=list(spec.targets), down_s=spec.duration)
        if spec.duration > 0:
            yield self.env.timeout(spec.duration)
        setup = 0.0
        for interface, was_attached in flapped:
            interface.enable()
            if was_attached:
                setup = max(setup, interface.attach())
        self._emit("fault.link_restore", nodes=list(spec.targets))
        if setup > 0:
            yield self.env.timeout(setup)

    def _apply_crash(self, spec: FaultSpec):
        for node_id in spec.targets:
            self.world.network.node(node_id).crash()
        self._emit("fault.crash", nodes=list(spec.targets))
        if spec.duration > 0:
            yield self.env.timeout(spec.duration)
            for node_id in spec.targets:
                self.world.network.node(node_id).restart()
            self.world.metrics.counter("faults.restart").increment(
                len(spec.targets)
            )
            self._emit("fault.restart", nodes=list(spec.targets))

    def _apply_hostile(self, spec: FaultSpec):
        """Launch the named hostile guest into each target host.

        The guest runs through the target's provider substrate under
        the principal ``hostile:<guest>``, so the host's policy decides
        the quota grant (and provider flavor) that must terminate it.
        The host then pays the metered CPU the guest actually consumed
        — a hostile guest costs its victim real simulated time, capped
        by the grant.  Outcomes land in per-node ``hostile.*`` metrics:
        ``terminated`` (killed by :class:`SandboxViolation` — the
        invariant), ``escapes`` (anything else — must stay zero).
        """
        metrics = self.world.metrics
        principal = f"hostile:{spec.guest}"
        for node_id in spec.targets:
            host = self.world.hosts.get(node_id)
            if host is None or not host.node.up:
                continue
            labels = {"node": node_id}
            deputy_calls = [0]

            def deputy() -> None:
                deputy_calls[0] += 1

            metrics.counter("hostile.guests", labels=labels).increment()
            result = host.run_guest(
                HOSTILE_GUESTS[spec.guest](),
                principal,
                services={"deputy": deputy, "host_id": node_id},
            )
            self._emit(
                "fault.hostile_guest",
                node=node_id,
                guest=spec.guest,
                terminated=not result.ok,
                error=result.error or "",
                work_units=result.metrics.work_units,
                storage_peak=result.metrics.peak_storage_bytes,
                service_calls=result.metrics.service_calls,
            )
            if (
                not result.ok
                and result.error_type == SandboxViolation.__name__
            ):
                metrics.counter(
                    "hostile.terminated", labels=labels
                ).increment()
            else:
                metrics.counter("hostile.escapes", labels=labels).increment()
            metrics.histogram("hostile.work_units", labels=labels).observe(
                result.metrics.work_units
            )
            yield from host.execute(result.work_used)

    def _apply_partition(self, spec: FaultSpec):
        self._partitions.append(spec.groups)
        self._install_filter()
        self._emit(
            "fault.partition",
            groups=[list(group) for group in spec.groups],
            duration=spec.duration,
        )
        if spec.duration > 0:
            yield self.env.timeout(spec.duration)
        self._partitions.remove(spec.groups)
        self._install_filter()
        self.world.metrics.counter("faults.heal").increment()
        self._emit("fault.heal", groups=[list(group) for group in spec.groups])

    def _install_filter(self) -> None:
        """Compose open partitions (plus any user filter) into one
        admission predicate and swap it in, bumping the epoch."""
        base = self._base_filter
        if not self._partitions:
            self.world.network.set_link_filter(base)
            return
        memberships = [
            {
                node_id: index
                for index, group in enumerate(partition)
                for node_id in group
            }
            for partition in self._partitions
        ]

        def admits(a: str, b: str) -> bool:
            if base is not None and not base(a, b):
                return False
            for members in memberships:
                side_a = members.get(a)
                side_b = members.get(b)
                if side_a is not None and side_b is not None and side_a != side_b:
                    return False
            return True

        self.world.network.set_link_filter(admits)

    # -- message faults (transport hook) -------------------------------------

    def _hits(self, spec: FaultSpec, destination_id: str, kind: str) -> bool:
        if not spec.matches(destination_id, kind):
            return False
        return spec.rate >= 1.0 or self._rng.random() < spec.rate

    def _apply_window(self, spec: FaultSpec):
        """Open a message-fault window; ``drops``/``deliver`` consult it."""
        self._windows[spec.kind].append(spec)
        self._emit(f"fault.{spec.kind}.open", rate=spec.rate)
        try:
            if spec.duration > 0:
                yield self.env.timeout(spec.duration)
        finally:
            self._windows[spec.kind].remove(spec)
            self._emit(f"fault.{spec.kind}.close")

    def drops(self, message: Message) -> bool:
        """Transport hook: force this in-flight copy to be lost?

        Runs *before* the delivery decision, so a forced loss looks like
        ordinary transit loss — reliable sends retransmit and upper
        layers retry, which is exactly the recovery path under test.
        """
        for spec in self._windows["drop"]:
            if self._hits(spec, message.destination, message.kind):
                self.world.metrics.counter("faults.messages_dropped").increment()
                return True
        return False

    def deliver(self, message: Message, destination: NetworkNode):
        """Transport hook: owns the inbox put(s) for a delivered message.

        May mark the payload corrupted, delay the delivery, or schedule
        duplicate copies.  Delays and duplicates run as spawned
        processes so the sender's timing (and the link-layer ACK) is
        exactly what it would have been without the fault.
        """
        for spec in self._windows["corrupt"]:
            if self._hits(spec, destination.id, message.kind):
                message.corrupted = True
                self.world.metrics.counter("faults.messages_corrupted").increment()
                break
        for spec in self._windows["duplicate"]:
            if self._hits(spec, destination.id, message.kind):
                copy = replace(message)
                self.world.metrics.counter("faults.messages_duplicated").increment()
                self._emit(
                    "fault.duplicate", msg=message.kind, to=destination.id
                )
                self.env.process(
                    self._deliver_later(copy, destination, spec.extra_latency_s),
                    name=f"fault-dup#{message.id}",
                )
        extra = 0.0
        for spec in self._windows["delay"]:
            if self._hits(spec, destination.id, message.kind):
                extra += spec.extra_latency_s
        if extra > 0:
            self.world.metrics.counter("faults.messages_delayed").increment()
            self.world.metrics.histogram("faults.extra_latency").observe(extra)
            self.env.process(
                self._deliver_later(message, destination, extra),
                name=f"fault-delay#{message.id}",
            )
            return
        if self.world.tracer.enabled:
            message.delivered_at = self.env.now
        yield destination.inbox.put(message)

    def _deliver_later(
        self, message: Message, destination: NetworkNode, delay_s: float
    ):
        if delay_s > 0:
            yield self.env.timeout(delay_s)
        # The node may have crashed while the copy was in flight.
        if destination.up:
            # Stamp at the *post-delay* put, so the injected stall shows
            # up as transit time in the span analysis, not dead air.
            if self.world.tracer.enabled:
                message.delivered_at = self.env.now
            yield destination.inbox.put(message)

    # -- teardown ------------------------------------------------------------

    def detach(self) -> None:
        """Unhook from the transport and restore the user link filter.

        Scheduled-but-unfired fault processes keep running; call this
        only after the plan has fully played out (``active_faults == 0``).
        """
        if self.world.transport.faults is self:
            self.world.transport.faults = None
        self._partitions.clear()
        self.world.network.set_link_filter(self._base_filter)


def inject(world, plan: FaultPlan) -> FaultInjector:
    """Convenience alias for :meth:`FaultPlan.inject`."""
    return FaultInjector(world, plan)
