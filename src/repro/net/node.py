"""Network nodes and their interfaces."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..errors import NetworkError
from ..sim import Environment, Resource, Store
from .cost import CostMeter
from .geometry import Position
from .message import Message
from .technologies import LinkTechnology


class Interface:
    """One radio/NIC of a node for a particular technology.

    An interface can be *enabled* (powered) and, for infrastructure
    technologies, *attached* (connected to the backbone: dialled-up,
    GPRS context active, associated to an access point).  Attached time
    is billed against the node's cost meter at per-minute tariffs.
    """

    def __init__(self, env: Environment, node: "NetworkNode", technology: LinkTechnology) -> None:
        self.env = env
        self.node = node
        self.technology = technology
        self.enabled = True
        self._attached = technology.infrastructure and node.fixed
        self._attached_since: Optional[float] = env.now if self._attached else None
        #: Radio is half-duplex-ish: one outbound transfer at a time.
        self.channel = Resource(env, capacity=1)

    @property
    def attached(self) -> bool:
        return self._attached

    def attach(self) -> float:
        """Connect to the backbone; returns the setup delay to pay.

        The caller (a process) is expected to ``yield env.timeout()`` on
        the returned delay — the interface records attachment from *now*
        regardless, which slightly favours the device; tests pin this.
        """
        if not self.technology.infrastructure:
            raise NetworkError(
                f"{self.technology.name} is ad-hoc; there is nothing to attach to"
            )
        if not self.enabled:
            raise NetworkError(f"interface {self.technology.name} is disabled")
        if self._attached:
            return 0.0
        self._attached = True
        self._attached_since = self.env.now
        self.node._touch_topology()
        return self.technology.setup_s

    def detach(self) -> None:
        """Disconnect from the backbone, billing the attached airtime."""
        if not self._attached:
            return
        self._settle_airtime()
        self._attached = False
        self._attached_since = None
        self.node._touch_topology()

    def disable(self) -> None:
        """Power the interface off (detaching first if needed)."""
        self.detach()
        if self.enabled:
            self.enabled = False
            self.node._touch_topology()

    def enable(self) -> None:
        if not self.enabled:
            self.enabled = True
            self.node._touch_topology()

    def _settle_airtime(self) -> None:
        if self._attached_since is not None:
            elapsed = self.env.now - self._attached_since
            self.node.costs.account_connection_time(self.technology, elapsed)
            self._attached_since = self.env.now

    def settle(self) -> None:
        """Bill airtime accrued so far (used at measurement points)."""
        if self._attached:
            self._settle_airtime()

    @property
    def usable(self) -> bool:
        """True if this interface can currently carry traffic."""
        if not self.enabled or not self.node.up:
            return False
        if self.technology.infrastructure:
            return self._attached
        return True

    def __repr__(self) -> str:
        state = "up" if self.usable else "down"
        return f"<Interface {self.node.id}/{self.technology.name} {state}>"


class NetworkNode:
    """A device on the network: fixed server or mobile handset.

    Nodes expose an ``inbox`` store of delivered :class:`Message` objects;
    higher layers (the middleware host) run a dispatch loop over it.
    """

    def __init__(
        self,
        env: Environment,
        node_id: str,
        position: Position = Position(0.0, 0.0),
        technologies: Iterable[LinkTechnology] = (),
        fixed: bool = False,
        cpu_speed: float = 1.0,
    ) -> None:
        self.env = env
        self.id = node_id
        self.position = position
        self.fixed = fixed
        #: Relative CPU speed (1.0 = reference fixed host); used by the
        #: REV/offloading experiments.
        self.cpu_speed = cpu_speed
        self.up = True
        self.costs = CostMeter()
        self.inbox: Store[Message] = Store(env)
        self.interfaces: Dict[str, Interface] = {}
        #: Back-reference set by :meth:`Network.add_node`; lets state
        #: changes bump the owning network's topology epoch.
        self._network = None
        for tech in technologies:
            self.add_interface(tech)

    def _touch_topology(self) -> None:
        network = self._network
        if network is not None:
            network._topology_changed(self)

    def add_interface(self, technology: LinkTechnology) -> Interface:
        if technology.name in self.interfaces:
            raise NetworkError(
                f"node {self.id} already has a {technology.name} interface"
            )
        interface = Interface(self.env, self, technology)
        self.interfaces[technology.name] = interface
        if self._network is not None:
            self._network._interface_added(self, technology)
        return interface

    def interface(self, technology_name: str) -> Interface:
        try:
            return self.interfaces[technology_name]
        except KeyError:
            raise NetworkError(
                f"node {self.id} has no {technology_name} interface"
            ) from None

    def usable_interfaces(self) -> List[Interface]:
        return [iface for iface in self.interfaces.values() if iface.usable]

    def crash(self) -> None:
        """Take the node down; pending inbox content is lost."""
        if self.up:
            self.up = False
            self._touch_topology()
        while self.inbox.try_get() is not None:
            pass

    def restart(self) -> None:
        if not self.up:
            self.up = True
            self._touch_topology()

    def move_to(self, position: Position) -> None:
        if position == self.position:
            return
        self.position = position
        network = self._network
        if network is not None:
            network._node_moved(self)

    def settle_airtime(self) -> None:
        """Bill all interfaces' accrued airtime (measurement point)."""
        for interface in self.interfaces.values():
            interface.settle()

    def __repr__(self) -> str:
        kind = "fixed" if self.fixed else "mobile"
        return f"<Node {self.id} {kind} at {self.position}>"
