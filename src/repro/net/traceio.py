"""Mobility-trace and connectivity-timeline I/O.

Experiments sometimes need trace-driven mobility (reproducing a
recorded movement pattern) or want to export what happened for external
analysis.  The formats are deliberately trivial, line-oriented text:

Mobility trace (``.mob``)::

    # node time x y
    n0 0.0 10.0 20.0
    n0 30.0 50.0 20.0
    n1 0.0 0.0 0.0

Connectivity timeline (``.con``)::

    # time a b up|down
    12.0 n0 n1 up
    47.5 n0 n1 down
"""

from __future__ import annotations

from typing import Dict, List, TextIO, Tuple

from ..errors import NetworkError
from ..sim import Environment
from .geometry import Position
from .mobility import PathMobility
from .monitor import ConnectivityMonitor
from .network import Network
from .node import NetworkNode

Waypoints = Dict[str, List[Tuple[float, Position]]]


def dump_mobility(waypoints: Waypoints, stream: TextIO) -> int:
    """Write waypoints in ``.mob`` format; returns lines written."""
    stream.write("# node time x y\n")
    lines = 1
    for node_id in sorted(waypoints):
        for time, position in sorted(waypoints[node_id], key=lambda p: p[0]):
            stream.write(
                f"{node_id} {time:.6g} {position.x:.6g} {position.y:.6g}\n"
            )
            lines += 1
    return lines


def load_mobility(stream: TextIO) -> Waypoints:
    """Parse a ``.mob`` stream back into waypoints.

    Raises :class:`NetworkError` on malformed lines (with line number).
    """
    waypoints: Waypoints = {}
    for line_number, raw in enumerate(stream, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 4:
            raise NetworkError(
                f"mobility trace line {line_number}: expected "
                f"'node time x y', got {line!r}"
            )
        node_id, time_text, x_text, y_text = parts
        try:
            entry = (float(time_text), Position(float(x_text), float(y_text)))
        except ValueError as error:
            raise NetworkError(
                f"mobility trace line {line_number}: {error}"
            ) from None
        waypoints.setdefault(node_id, []).append(entry)
    for node_id in waypoints:
        waypoints[node_id].sort(key=lambda pair: pair[0])
    return waypoints


def replay_mobility(
    env: Environment,
    nodes: Dict[str, NetworkNode],
    stream: TextIO,
    tick: float = 1.0,
) -> PathMobility:
    """Drive ``nodes`` along a ``.mob`` trace.

    Node ids present in the trace but absent from ``nodes`` raise, so a
    typo never silently leaves a node parked.
    """
    waypoints = load_mobility(stream)
    missing = sorted(set(waypoints) - set(nodes))
    if missing:
        raise NetworkError(
            f"mobility trace names unknown nodes: {missing}"
        )
    # Snap each node to its first waypoint if it starts at t<=0.
    for node_id, points in waypoints.items():
        first_time, first_position = points[0]
        if first_time <= env.now:
            nodes[node_id].move_to(first_position)
    return PathMobility(env, nodes, waypoints, tick=tick)


class ConnectivityRecorder:
    """Watches one node and records link up/down transitions.

    Attach one per observed node; call :meth:`dump` (or read
    :attr:`events`) when the run ends.
    """

    def __init__(
        self,
        env: Environment,
        network: Network,
        node: NetworkNode,
        interval: float = 1.0,
        metrics=None,
        trace=None,
    ) -> None:
        self.node = node
        self.events: List[Tuple[float, str, str, str]] = []
        self._env = env
        self._monitor = ConnectivityMonitor(
            env, network, node, interval=interval, metrics=metrics,
            trace=trace,
        )
        self._monitor.subscribe(self._on_change)

    def _on_change(self, peer_id: str, appeared: bool) -> None:
        self.events.append(
            (
                self._env.now,
                self.node.id,
                peer_id,
                "up" if appeared else "down",
            )
        )

    def contact_count(self, peer_id: str) -> int:
        """How many times the peer came into contact."""
        return sum(
            1
            for _t, _a, b, state in self.events
            if b == peer_id and state == "up"
        )

    def total_contact_time(self, peer_id: str, until: float) -> float:
        """Seconds of contact with ``peer_id`` up to time ``until``."""
        total = 0.0
        up_since = None
        for time, _a, b, state in self.events:
            if b != peer_id:
                continue
            if state == "up" and up_since is None:
                up_since = time
            elif state == "down" and up_since is not None:
                total += time - up_since
                up_since = None
        if up_since is not None:
            total += until - up_since
        return total

    def dump(self, stream: TextIO) -> int:
        """Write the timeline in ``.con`` format; returns lines written."""
        stream.write("# time a b up|down\n")
        for time, a, b, state in self.events:
            stream.write(f"{time:.6g} {a} {b} {state}\n")
        return len(self.events) + 1
