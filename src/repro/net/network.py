"""The network: node registry and instantaneous connectivity.

Connectivity is computed on demand from node positions and interface
states, so mobility and churn are reflected immediately:

* two usable *ad-hoc* interfaces of the same technology connect when the
  nodes are within radio range;
* two usable *attached* infrastructure interfaces (of any technologies)
  connect through the fixed backbone — e.g. a GPRS handset reaching a
  LAN server; the path takes the minimum bandwidth and the sum of
  latencies plus a backbone hop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

from ..errors import NetworkError
from ..sim import Environment
from .node import Interface, NetworkNode
from .technologies import BACKBONE_LATENCY_S, LinkTechnology


@dataclass(frozen=True)
class Link:
    """The effective path between two nodes at one instant."""

    sender_technology: LinkTechnology
    receiver_technology: LinkTechnology
    bandwidth_bps: float
    latency_s: float
    loss: float
    via_backbone: bool

    def transfer_time(self, size_bytes: int) -> float:
        return size_bytes * 8.0 / self.bandwidth_bps

    @property
    def name(self) -> str:
        if self.via_backbone:
            return (
                f"{self.sender_technology.name}~backbone~"
                f"{self.receiver_technology.name}"
            )
        return self.sender_technology.name

    @property
    def is_free(self) -> bool:
        """True when neither endpoint pays a metered tariff for it."""
        return (
            self.sender_technology.cost_per_mb == 0.0
            and self.sender_technology.cost_per_minute == 0.0
            and self.receiver_technology.cost_per_mb == 0.0
            and self.receiver_technology.cost_per_minute == 0.0
        )


def _direct_link(tech: LinkTechnology) -> Link:
    return Link(
        sender_technology=tech,
        receiver_technology=tech,
        bandwidth_bps=tech.bandwidth_bps,
        latency_s=tech.latency_s,
        loss=tech.loss,
        via_backbone=False,
    )


def _backbone_link(sender: LinkTechnology, receiver: LinkTechnology) -> Link:
    return Link(
        sender_technology=sender,
        receiver_technology=receiver,
        bandwidth_bps=min(sender.bandwidth_bps, receiver.bandwidth_bps),
        latency_s=sender.latency_s + BACKBONE_LATENCY_S + receiver.latency_s,
        loss=1.0 - (1.0 - sender.loss) * (1.0 - receiver.loss),
        via_backbone=True,
    )


#: Orders candidate links; the default prefers free links, then faster ones.
LinkPolicy = Callable[[Link], tuple]


def prefer_free_then_fast(link: Link) -> tuple:
    """Default link selection: free links first, then highest bandwidth."""
    return (0 if link.is_free else 1, -link.bandwidth_bps, link.latency_s)


def prefer_fast(link: Link) -> tuple:
    """Latency/bandwidth-greedy selection, ignoring tariffs."""
    return (-link.bandwidth_bps, link.latency_s)


class Network:
    """Registry of nodes plus connectivity queries."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self.nodes: Dict[str, NetworkNode] = {}

    def add_node(self, node: NetworkNode) -> NetworkNode:
        if node.id in self.nodes:
            raise NetworkError(f"duplicate node id {node.id!r}")
        self.nodes[node.id] = node
        return node

    def node(self, node_id: str) -> NetworkNode:
        try:
            return self.nodes[node_id]
        except KeyError:
            raise NetworkError(f"unknown node {node_id!r}") from None

    def __contains__(self, node_id: str) -> bool:
        return node_id in self.nodes

    def __len__(self) -> int:
        return len(self.nodes)

    # -- connectivity --------------------------------------------------------

    def links_between(self, a: NetworkNode, b: NetworkNode) -> List[Link]:
        """Every link that could carry a message from ``a`` to ``b`` now."""
        if a.id == b.id:
            raise NetworkError(f"node {a.id!r} cannot link to itself")
        if not (a.up and b.up):
            return []
        links: List[Link] = []
        a_ifaces = a.usable_interfaces()
        b_by_name = {i.technology.name: i for i in b.usable_interfaces()}
        # Direct ad-hoc links: same technology, within range.
        for iface in a_ifaces:
            tech = iface.technology
            peer = b_by_name.get(tech.name)
            if peer is None or not tech.is_adhoc:
                continue
            if a.position.distance_to(b.position) <= tech.range_m:
                links.append(_direct_link(tech))
        # Backbone links: any attached infrastructure pair.  Radio-based
        # infrastructure (hotspot Wi-Fi) additionally needs an in-range
        # base station/access point.
        a_infra = [
            i
            for i in a_ifaces
            if i.technology.infrastructure and self._infra_covered(a, i)
        ]
        b_infra = [
            i
            for i in b_by_name.values()
            if i.technology.infrastructure and self._infra_covered(b, i)
        ]
        for sender in a_infra:
            for receiver in b_infra:
                links.append(
                    _backbone_link(sender.technology, receiver.technology)
                )
        return links

    def _infra_covered(self, node: NetworkNode, interface: Interface) -> bool:
        """True when ``node`` has coverage for an infrastructure radio.

        Wired/cellular technologies (``range_m == 0``) are covered
        everywhere; radio infrastructure (e.g. hotspot Wi-Fi) needs a
        *fixed* node carrying the same technology within range — the
        access point.  Fixed nodes are their own base stations.
        """
        technology = interface.technology
        if technology.range_m <= 0 or node.fixed:
            return True
        for other in self.nodes.values():
            if other.id == node.id or not other.fixed or not other.up:
                continue
            access_point = other.interfaces.get(technology.name)
            if access_point is None or not access_point.enabled:
                continue
            if node.position.distance_to(other.position) <= technology.range_m:
                return True
        return False

    def best_link(
        self,
        a: NetworkNode,
        b: NetworkNode,
        policy: LinkPolicy = prefer_free_then_fast,
    ) -> Optional[Link]:
        """The preferred link from ``a`` to ``b``, or None if unreachable."""
        links = self.links_between(a, b)
        if not links:
            return None
        return min(links, key=policy)

    def connected(self, a_id: str, b_id: str) -> bool:
        return self.best_link(self.node(a_id), self.node(b_id)) is not None

    def neighbors(
        self, node: NetworkNode, technology: Optional[LinkTechnology] = None
    ) -> List[NetworkNode]:
        """Nodes reachable from ``node`` over *ad-hoc* radio right now.

        With ``technology`` given, restrict to that radio; otherwise any
        shared ad-hoc technology counts.
        """
        if not node.up:
            return []
        neighbors = []
        for other in self.nodes.values():
            if other.id == node.id or not other.up:
                continue
            for link in self.links_between(node, other):
                if link.via_backbone:
                    continue
                if technology is not None and (
                    link.sender_technology.name != technology.name
                ):
                    continue
                neighbors.append(other)
                break
        return neighbors

    def adjacency(self, adhoc_only: bool = False) -> Dict[str, Set[str]]:
        """Snapshot of the connectivity graph as an adjacency mapping."""
        ids = list(self.nodes)
        graph: Dict[str, Set[str]] = {node_id: set() for node_id in ids}
        for index, a_id in enumerate(ids):
            for b_id in ids[index + 1 :]:
                links = self.links_between(self.nodes[a_id], self.nodes[b_id])
                if adhoc_only:
                    links = [link for link in links if not link.via_backbone]
                if links:
                    graph[a_id].add(b_id)
                    graph[b_id].add(a_id)
        return graph

    def reachable_set(self, start_id: str, adhoc_only: bool = False) -> Set[str]:
        """Transitive closure of connectivity from ``start_id`` (BFS)."""
        graph = self.adjacency(adhoc_only=adhoc_only)
        seen = {start_id}
        frontier = [start_id]
        while frontier:
            current = frontier.pop()
            for neighbor in graph.get(current, ()):
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return seen

    def shortest_path(
        self, source_id: str, target_id: str, adhoc_only: bool = False
    ) -> Optional[List[str]]:
        """Hop-minimal node path from source to target, or None."""
        if source_id == target_id:
            return [source_id]
        graph = self.adjacency(adhoc_only=adhoc_only)
        previous: Dict[str, str] = {}
        seen = {source_id}
        frontier = [source_id]
        while frontier:
            next_frontier: List[str] = []
            for current in frontier:
                for neighbor in sorted(graph.get(current, ())):
                    if neighbor in seen:
                        continue
                    seen.add(neighbor)
                    previous[neighbor] = current
                    if neighbor == target_id:
                        path = [target_id]
                        while path[-1] != source_id:
                            path.append(previous[path[-1]])
                        path.reverse()
                        return path
                    next_frontier.append(neighbor)
            frontier = next_frontier
        return None
