"""The network: node registry and instantaneous connectivity.

Connectivity is a pure function of node positions and interface states,
so mobility and churn are reflected immediately:

* two usable *ad-hoc* interfaces of the same technology connect when the
  nodes are within radio range;
* two usable *attached* infrastructure interfaces (of any technologies)
  connect through the fixed backbone — e.g. a GPRS handset reaching a
  LAN server; the path takes the minimum bandwidth and the sum of
  latencies plus a backbone hop.

Topology queries are *incremental* rather than recomputed: every
mutation that can change connectivity (node add, move, crash/restart,
interface enable/disable/attach/detach) bumps a **topology epoch**, and
``links_between``/``neighbors``/``adjacency``/``reachable_set``/
``shortest_path`` results are cached until the epoch moves.  Candidate
enumeration uses a :class:`~repro.net.geometry.SpatialGrid` so range
queries touch only nearby nodes instead of the whole registry.  The
cached fast paths are bit-identical to the naive sweeps kept in
:mod:`repro.net.reference` (property-tested under random mobility).

Three mechanisms make the fabric scale past ~10k nodes (see
docs/PERFORMANCE.md, "City-scale routing"):

* **Implicit backbone clique.**  Every pair of backbone-attached nodes
  connects, which is O(n²) edges if written down.  :meth:`adjacency`
  returns an :class:`AdjacencyView` that stores the attached set as one
  frozenset and answers clique membership on the fly, so a snapshot is
  O(nodes + ad-hoc edges) and BFS absorbs the whole clique in one step.
* **Dirty log.**  Each epoch bump records *which* node (and which grid
  cells) changed.  Consumers — the per-pair/per-node caches below, the
  routing tables, the connectivity monitor — ask
  :meth:`dirty_since`/:meth:`dirty_cells_since` and repair only what a
  dirty node can have touched instead of recomputing the world.
* **Move elision.**  A ``move_to`` that provably changes no link
  predicate (same grid cell, identical in-range sets at every radio
  range the node carries) updates the grid and *does not* bump the
  epoch at all: mobility jitter inside a cell is free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

from ..errors import NetworkError
from ..sim import Environment
from .geometry import Position, SpatialGrid
from .node import Interface, NetworkNode
from .technologies import BACKBONE_LATENCY_S, LinkTechnology

Cell = Tuple[int, int]


@dataclass(frozen=True)
class Link:
    """The effective path between two nodes at one instant."""

    sender_technology: LinkTechnology
    receiver_technology: LinkTechnology
    bandwidth_bps: float
    latency_s: float
    loss: float
    via_backbone: bool

    def transfer_time(self, size_bytes: int) -> float:
        return size_bytes * 8.0 / self.bandwidth_bps

    @property
    def name(self) -> str:
        if self.via_backbone:
            return (
                f"{self.sender_technology.name}~backbone~"
                f"{self.receiver_technology.name}"
            )
        return self.sender_technology.name

    @property
    def is_free(self) -> bool:
        """True when neither endpoint pays a metered tariff for it."""
        return (
            self.sender_technology.cost_per_mb == 0.0
            and self.sender_technology.cost_per_minute == 0.0
            and self.receiver_technology.cost_per_mb == 0.0
            and self.receiver_technology.cost_per_minute == 0.0
        )


def _direct_link(tech: LinkTechnology) -> Link:
    return Link(
        sender_technology=tech,
        receiver_technology=tech,
        bandwidth_bps=tech.bandwidth_bps,
        latency_s=tech.latency_s,
        loss=tech.loss,
        via_backbone=False,
    )


def _backbone_link(sender: LinkTechnology, receiver: LinkTechnology) -> Link:
    return Link(
        sender_technology=sender,
        receiver_technology=receiver,
        bandwidth_bps=min(sender.bandwidth_bps, receiver.bandwidth_bps),
        latency_s=sender.latency_s + BACKBONE_LATENCY_S + receiver.latency_s,
        loss=1.0 - (1.0 - sender.loss) * (1.0 - receiver.loss),
        via_backbone=True,
    )


#: Orders candidate links; the default prefers free links, then faster ones.
LinkPolicy = Callable[[Link], tuple]


def prefer_free_then_fast(link: Link) -> tuple:
    """Default link selection: free links first, then highest bandwidth."""
    return (0 if link.is_free else 1, -link.bandwidth_bps, link.latency_s)


def prefer_fast(link: Link) -> tuple:
    """Latency/bandwidth-greedy selection, ignoring tariffs."""
    return (-link.bandwidth_bps, link.latency_s)


#: Sentinel distinguishing "not cached" from a cached ``None`` path.
_MISSING = object()


class AdjacencyView(Mapping):
    """Adjacency snapshot with the backbone clique kept *implicit*.

    Ad-hoc edges are explicit (per up-node sorted neighbour tuples);
    the backbone-attached set is a single frozenset, and every pair of
    its members is connected by definition.  Materialising a node's
    full neighbour set (``view[node_id]``) therefore costs O(degree +
    clique) *per call* — fine for tests and small graphs — while
    holding the snapshot costs O(nodes + ad-hoc edges) no matter how
    large the clique is.  BFS consumers should use
    :func:`bfs_reachable`/:func:`bfs_tree`, which absorb the clique in
    one step instead of walking its quadratic edge set.

    Only *up* nodes appear as keys: crashed nodes have no links, so
    they contribute neither buckets nor clique membership.
    """

    __slots__ = ("_adhoc", "_backbone")

    def __init__(
        self,
        adhoc: Dict[str, Tuple[str, ...]],
        backbone: FrozenSet[str],
    ) -> None:
        self._adhoc = adhoc
        self._backbone = backbone

    @property
    def backbone(self) -> FrozenSet[str]:
        """The backbone-attached up nodes (pairwise connected clique)."""
        return self._backbone

    def adhoc_neighbors(self, node_id: str) -> Tuple[str, ...]:
        """Sorted explicit ad-hoc neighbours of ``node_id`` (no clique)."""
        return self._adhoc.get(node_id, ())

    def __getitem__(self, node_id: str) -> FrozenSet[str]:
        bucket = self._adhoc[node_id]
        if node_id in self._backbone:
            return frozenset(bucket).union(self._backbone) - {node_id}
        return frozenset(bucket)

    def get(self, node_id: str, default=frozenset()):
        if node_id not in self._adhoc:
            return default
        return self[node_id]

    def __iter__(self) -> Iterator[str]:
        return iter(self._adhoc)

    def __len__(self) -> int:
        return len(self._adhoc)

    def __contains__(self, node_id: object) -> bool:
        return node_id in self._adhoc

    def edge_count(self) -> int:
        """Count of *materialised* (directed) edges — excludes the clique."""
        return sum(len(bucket) for bucket in self._adhoc.values())


def _merge_sorted(a: Tuple[str, ...], b: List[str]) -> Iterator[str]:
    """Merge two sorted id sequences into sorted order (dups preserved)."""
    i = j = 0
    len_a, len_b = len(a), len(b)
    while i < len_a and j < len_b:
        if a[i] <= b[j]:
            yield a[i]
            i += 1
        else:
            yield b[j]
            j += 1
    while i < len_a:
        yield a[i]
        i += 1
    while j < len_b:
        yield b[j]
        j += 1


def bfs_reachable(view: AdjacencyView, start_id: str) -> FrozenSet[str]:
    """Transitive closure over ``view`` with one-shot clique absorption."""
    adhoc = view._adhoc
    backbone = view._backbone
    seen = {start_id}
    frontier = [start_id]
    clique_absorbed = not backbone
    while frontier:
        current = frontier.pop()
        for neighbor in adhoc.get(current, ()):
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
        if not clique_absorbed and current in backbone:
            # Reaching any clique member reaches them all; absorbing the
            # whole set once avoids walking the O(n²) implicit edges.
            clique_absorbed = True
            for neighbor in backbone:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
    return frozenset(seen)


def bfs_tree(
    view: AdjacencyView,
    source_id: str,
    target_id: Optional[str] = None,
) -> Dict[str, str]:
    """BFS predecessor tree over ``view``, clique-aware.

    Bit-identical to a BFS that expands ``sorted(materialised
    neighbours)`` per node (the reference semantics): each expansion
    iterates the *sorted union* of the node's ad-hoc bucket and — for
    clique members — the not-yet-discovered clique remainder, so
    predecessor assignment and frontier order match the naive sweep
    exactly while the clique's edges are walked at most once per BFS.
    With ``target_id`` given, returns as soon as the target is
    discovered (the tree is then partial but the source→target walk is
    complete and identical to the full tree's).
    """
    adhoc = view._adhoc
    backbone = view._backbone
    previous: Dict[str, str] = {}
    seen = {source_id}
    # Clique members nobody has discovered yet, sorted for merging.
    pending = sorted(backbone - seen) if backbone else []
    frontier = [source_id]
    while frontier:
        next_frontier: List[str] = []
        for current in frontier:
            bucket = adhoc.get(current, ())
            if pending and current in backbone:
                neighbors = _merge_sorted(bucket, pending)
                # Every pending member is a neighbour of ``current`` and
                # gets discovered in the loop below (or already was).
                pending = []
            else:
                neighbors = iter(bucket)
            for neighbor in neighbors:
                if neighbor in seen:
                    continue
                seen.add(neighbor)
                previous[neighbor] = current
                if neighbor == target_id:
                    return previous
                next_frontier.append(neighbor)
        frontier = next_frontier
    return previous


def walk_tree(
    previous: Dict[str, str], source_id: str, target_id: str
) -> Optional[List[str]]:
    """Source→target node path from a predecessor tree, or None."""
    if source_id == target_id:
        return [source_id]
    if target_id not in previous:
        return None
    walk = [target_id]
    while walk[-1] != source_id:
        walk.append(previous[walk[-1]])
    walk.reverse()
    return walk


class Network:
    """Registry of nodes plus epoch-cached connectivity queries."""

    #: Default spatial-hash cell size; grown to the longest radio range
    #: seen so a single query ring covers one full range circle.
    DEFAULT_CELL_M = 100.0

    #: Dirty-log length; consumers further behind than this get a
    #: conservative "everything dirty" answer.
    DIRTY_LOG_CAP = 4096

    def __init__(self, env: Environment) -> None:
        self.env = env
        self.nodes: Dict[str, NetworkNode] = {}
        self._grid = SpatialGrid(cell_size=self.DEFAULT_CELL_M)
        #: Node id -> registration index; imposes registry iteration
        #: order on grid candidates so results match the naive sweep.
        self._order: Dict[str, int] = {}
        self._epoch = 0
        self._cache_epoch = -1
        #: Per-pair/per-node caches are *tagged* with the epoch they
        #: were computed at and revalidated lazily against the dirty
        #: log, so entries untouched by a localised change survive it.
        self._links_cache: Dict[
            Tuple[str, str], Tuple[int, Tuple[Link, ...]]
        ] = {}
        self._neighbors_cache: Dict[
            Tuple[str, Optional[str]], Tuple[int, Tuple[NetworkNode, ...]]
        ] = {}
        self._coverage_cache: Dict[Tuple[str, str], Tuple[int, bool]] = {}
        #: Whole-graph snapshots still clear on any epoch change (their
        #: consumers with repair logic live in repro.net.routing).
        self._adjacency_cache: Dict[bool, AdjacencyView] = {}
        self._reachable_cache: Dict[Tuple[str, bool], FrozenSet[str]] = {}
        self._path_cache: Dict[Tuple[str, str, bool], object] = {}
        self.cache_stats = {
            "hits": 0,
            "misses": 0,
            "invalidations": 0,
            "revalidations": 0,
            "dirty_nodes": 0,
            "moves_elided": 0,
        }
        #: Append-only (epoch, node_id-or-None, cells) journal of what
        #: each bump touched; ``None`` node means a global change.
        self._dirty_log: List[Tuple[int, Optional[str], Tuple[Cell, ...]]] = []
        #: Epochs at or below this fell off the journal.
        self._dirty_floor = 0
        #: Memoised dirty-ring answers per from-epoch (cleared on bump).
        self._dirty_ring_cache: Dict[int, Optional[FrozenSet[Cell]]] = {}
        #: Optional admission predicate over (sender id, receiver id):
        #: when set, pairs it rejects have no links at all — the
        #: injection point :mod:`repro.faults` uses to model network
        #: partitions.  Installing/clearing it bumps the topology epoch
        #: so every cached connectivity answer is recomputed.
        self._link_filter: Optional[Callable[[str, str], bool]] = None

    def add_node(self, node: NetworkNode) -> NetworkNode:
        if node.id in self.nodes:
            raise NetworkError(f"duplicate node id {node.id!r}")
        if node._network is not None and node._network is not self:
            raise NetworkError(
                f"node {node.id!r} already belongs to another network"
            )
        self.nodes[node.id] = node
        self._order[node.id] = len(self._order)
        node._network = self
        cell_size = self._grid.cell_size
        for interface in node.interfaces.values():
            self._note_range(interface.technology)
        self._grid.insert(node.id, node.position)
        if self._grid.cell_size != cell_size:
            self._bump()  # grid rebuilt: every cached cell id is stale
        else:
            self._bump(node.id, (self._grid.cell_of(node.position),))
        return node

    def node(self, node_id: str) -> NetworkNode:
        try:
            return self.nodes[node_id]
        except KeyError:
            raise NetworkError(f"unknown node {node_id!r}") from None

    def __contains__(self, node_id: str) -> bool:
        return node_id in self.nodes

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def grid(self) -> SpatialGrid:
        """The live spatial index (read-only use by routers/monitors)."""
        return self._grid

    # -- topology epoch -------------------------------------------------------

    @property
    def topology_epoch(self) -> int:
        """Monotonic counter; unchanged epoch guarantees identical
        answers from every connectivity query."""
        return self._epoch

    def _bump(
        self, node_id: Optional[str] = None, cells: Tuple[Cell, ...] = ()
    ) -> None:
        """Advance the epoch, journalling what changed.

        ``node_id=None`` records a *global* change (grid rebuild, link
        filter swap): every dirty query until consumers resync answers
        "everything".  Otherwise the single dirty node and the grid
        cells it can have affected are appended to the log.
        """
        self._epoch += 1
        self._dirty_ring_cache.clear()
        log = self._dirty_log
        log.append((self._epoch, node_id, cells))
        if node_id is not None:
            self.cache_stats["dirty_nodes"] += 1
        if len(log) > self.DIRTY_LOG_CAP:
            drop = len(log) // 2
            self._dirty_floor = log[drop - 1][0]
            del log[:drop]

    def dirty_since(self, epoch: int) -> Tuple[int, Optional[FrozenSet[str]]]:
        """Nodes whose connectivity can have changed after ``epoch``.

        Returns ``(current_epoch, dirty_ids)``; ``dirty_ids`` is
        ``None`` when the caller must assume everything changed (a
        global mutation happened, or ``epoch`` predates the journal).
        An up-to-date caller gets an empty frozenset.
        """
        if epoch >= self._epoch:
            return (self._epoch, frozenset())
        if epoch < self._dirty_floor:
            return (self._epoch, None)
        dirty: List[str] = []
        for entry_epoch, node_id, _cells in reversed(self._dirty_log):
            if entry_epoch <= epoch:
                break
            if node_id is None:
                return (self._epoch, None)
            dirty.append(node_id)
        return (self._epoch, frozenset(dirty))

    def dirty_cells_since(
        self, epoch: int
    ) -> Tuple[int, Optional[FrozenSet[Cell]]]:
        """Grid cells touched by changes after ``epoch`` (None = all).

        A moved node contributes both its old and new cell, so "no
        dirty cell within one ring of mine" certifies an unchanged
        neighbourhood (cell size ≥ every radio range).
        """
        if epoch >= self._epoch:
            return (self._epoch, frozenset())
        if epoch < self._dirty_floor:
            return (self._epoch, None)
        cells: List[Cell] = []
        for entry_epoch, node_id, entry_cells in reversed(self._dirty_log):
            if entry_epoch <= epoch:
                break
            if node_id is None:
                return (self._epoch, None)
            cells.extend(entry_cells)
        return (self._epoch, frozenset(cells))

    def _dirty_ring(self, epoch: int) -> Optional[FrozenSet[Cell]]:
        """Dirty cells since ``epoch`` dilated by one ring, memoised.

        A cached per-node/per-pair answer computed at ``epoch`` is
        still valid iff none of its endpoints' cells is in this set
        (``None`` = global change, nothing survives).
        """
        cached = self._dirty_ring_cache.get(epoch, _MISSING)
        if cached is not _MISSING:
            return cached  # type: ignore[return-value]
        _, cells = self.dirty_cells_since(epoch)
        ring: Optional[FrozenSet[Cell]]
        if cells is None:
            ring = None
        else:
            ring = frozenset(
                (cx + dx, cy + dy)
                for cx, cy in cells
                for dx in (-1, 0, 1)
                for dy in (-1, 0, 1)
            )
        self._dirty_ring_cache[epoch] = ring
        return ring

    def _entry_fresh(self, entry_epoch: int, *positions: Position) -> bool:
        """True when a tagged cache entry provably still holds.

        The entry is about nodes at ``positions``; it survives a newer
        epoch iff no dirty cell lies within one ring of any of them —
        no mutation since could have touched a link predicate whose
        endpoints sit there.
        """
        ring = self._dirty_ring(entry_epoch)
        if ring is None:
            return False
        cell_of = self._grid.cell_of
        for position in positions:
            if cell_of(position) in ring:
                return False
        return True

    def cache_info(self) -> Dict[str, float]:
        """Flat snapshot of cache effectiveness for reports/benchmarks."""
        info = {
            "epoch": float(self._epoch),
            "grid_cell_m": self._grid.cell_size,
        }
        for key, value in self.cache_stats.items():
            info[key] = float(value)
        return info

    @property
    def link_filter(self) -> Optional[Callable[[str, str], bool]]:
        return self._link_filter

    def set_link_filter(
        self, predicate: Optional[Callable[[str, str], bool]]
    ) -> None:
        """Install (or with ``None`` clear) the link admission filter.

        The predicate sees ``(sender id, receiver id)`` and returns
        False to sever every link between the pair.  It must be pure
        with respect to the topology epoch: the filter's answers are
        baked into the connectivity caches, so whoever mutates the
        predicate's underlying state must call this setter again (each
        call bumps the epoch).
        """
        self._link_filter = predicate
        self._bump()

    def _note_range(self, technology: LinkTechnology) -> None:
        if technology.range_m > self._grid.cell_size:
            self._grid.rebuild(technology.range_m)

    # Mutation hooks, called from NetworkNode/Interface.

    def _node_moved(self, node: NetworkNode) -> None:
        if self.nodes.get(node.id) is not node:
            return
        grid = self._grid
        old = grid.position_of(node.id)
        new = node.position
        old_cell = grid.cell_of(old)
        new_cell = grid.cell_of(new)
        if old_cell == new_cell and self._in_range_sets_unchanged(
            node, old, new
        ):
            # The move provably changed no link predicate: every pair
            # distance stays on the same side of every relevant range
            # threshold.  Track the position, skip the epoch entirely.
            grid.move(node.id, new)
            self.cache_stats["moves_elided"] += 1
            return
        grid.move(node.id, new)
        if old_cell == new_cell:
            self._bump(node.id, (new_cell,))
        else:
            self._bump(node.id, (old_cell, new_cell))

    def _in_range_sets_unchanged(
        self, node: NetworkNode, old: Position, new: Position
    ) -> bool:
        """True when no in-range set at any of ``node``'s radio ranges
        differs between ``old`` and ``new``.

        Distance only enters link computation through ``distance ≤
        range_m`` tests at the ranges of technologies this node carries
        (shared-technology ad-hoc links and access-point coverage both
        use the node's own technology's range), so unchanged in-range
        id sets at each such range mean unchanged connectivity.
        """
        grid = self._grid
        ranges = {
            interface.technology.range_m
            for interface in node.interfaces.values()
            if interface.technology.range_m > 0.0
        }
        exclude = {node.id}
        for radius in ranges:
            before = set(grid.near(old, radius)) - exclude
            after = set(grid.near(new, radius)) - exclude
            if before != after:
                return False
        return True

    def _topology_changed(self, node: NetworkNode) -> None:
        if self.nodes.get(node.id) is node:
            self._bump(node.id, (self._grid.cell_of(node.position),))
        else:
            self._bump(node.id)

    def _interface_added(
        self, node: NetworkNode, technology: LinkTechnology
    ) -> None:
        cell_size = self._grid.cell_size
        self._note_range(technology)
        if self._grid.cell_size != cell_size:
            self._bump()  # rebuild renumbered every cell
        else:
            self._topology_changed(node)

    def _validate_caches(self) -> None:
        if self._cache_epoch != self._epoch:
            # Whole-graph products clear; tagged per-node/per-pair
            # entries are revalidated individually at read time.
            self._adjacency_cache.clear()
            self._reachable_cache.clear()
            self._path_cache.clear()
            self._cache_epoch = self._epoch
            self.cache_stats["invalidations"] += 1

    def _registered(self, node: NetworkNode) -> bool:
        return self.nodes.get(node.id) is node

    # -- connectivity --------------------------------------------------------

    def links_between(self, a: NetworkNode, b: NetworkNode) -> Tuple[Link, ...]:
        """Every link that could carry a message from ``a`` to ``b`` now."""
        if a.id == b.id:
            raise NetworkError(f"node {a.id!r} cannot link to itself")
        cacheable = self._registered(a) and self._registered(b)
        if cacheable:
            self._validate_caches()
            key = (a.id, b.id)
            entry = self._links_cache.get(key)
            if entry is not None:
                entry_epoch, links = entry
                if entry_epoch == self._epoch:
                    self.cache_stats["hits"] += 1
                    return links
                if self._entry_fresh(entry_epoch, a.position, b.position):
                    self._links_cache[key] = (self._epoch, links)
                    self.cache_stats["hits"] += 1
                    self.cache_stats["revalidations"] += 1
                    return links
            self.cache_stats["misses"] += 1
        links = self._compute_links(a, b)
        if cacheable:
            self._links_cache[key] = (self._epoch, links)
        return links

    def _compute_links(self, a: NetworkNode, b: NetworkNode) -> Tuple[Link, ...]:
        if not (a.up and b.up):
            return ()
        if self._link_filter is not None and not self._link_filter(a.id, b.id):
            return ()
        links: List[Link] = []
        a_ifaces = a.usable_interfaces()
        b_by_name = {i.technology.name: i for i in b.usable_interfaces()}
        # Direct ad-hoc links: same technology, within range.
        for iface in a_ifaces:
            tech = iface.technology
            peer = b_by_name.get(tech.name)
            if peer is None or not tech.is_adhoc:
                continue
            if a.position.distance_to(b.position) <= tech.range_m:
                links.append(_direct_link(tech))
        # Backbone links: any attached infrastructure pair.  Radio-based
        # infrastructure (hotspot Wi-Fi) additionally needs an in-range
        # base station/access point.
        a_infra = [
            i
            for i in a_ifaces
            if i.technology.infrastructure and self._infra_covered(a, i)
        ]
        b_infra = [
            i
            for i in b_by_name.values()
            if i.technology.infrastructure and self._infra_covered(b, i)
        ]
        for sender in a_infra:
            for receiver in b_infra:
                links.append(
                    _backbone_link(sender.technology, receiver.technology)
                )
        return tuple(links)

    def _infra_covered(self, node: NetworkNode, interface: Interface) -> bool:
        """True when ``node`` has coverage for an infrastructure radio.

        Wired/cellular technologies (``range_m == 0``) are covered
        everywhere; radio infrastructure (e.g. hotspot Wi-Fi) needs a
        *fixed* node carrying the same technology within range — the
        access point.  Fixed nodes are their own base stations.
        """
        technology = interface.technology
        if technology.range_m <= 0 or node.fixed:
            return True
        cacheable = self._registered(node)
        if cacheable:
            self._validate_caches()
            key = (node.id, technology.name)
            entry = self._coverage_cache.get(key)
            if entry is not None:
                entry_epoch, covered = entry
                if entry_epoch == self._epoch:
                    return covered
                if self._entry_fresh(entry_epoch, node.position):
                    self._coverage_cache[key] = (self._epoch, covered)
                    self.cache_stats["revalidations"] += 1
                    return covered
        covered = False
        for other_id in self._grid.near(node.position, technology.range_m):
            if other_id == node.id:
                continue
            other = self.nodes[other_id]
            if not other.fixed or not other.up:
                continue
            access_point = other.interfaces.get(technology.name)
            if access_point is None or not access_point.enabled:
                continue
            covered = True
            break
        if cacheable:
            self._coverage_cache[key] = (self._epoch, covered)
        return covered

    def best_link(
        self,
        a: NetworkNode,
        b: NetworkNode,
        policy: LinkPolicy = prefer_free_then_fast,
    ) -> Optional[Link]:
        """The preferred link from ``a`` to ``b``, or None if unreachable."""
        links = self.links_between(a, b)
        if not links:
            return None
        return min(links, key=policy)

    def connected(self, a_id: str, b_id: str) -> bool:
        return self.best_link(self.node(a_id), self.node(b_id)) is not None

    def neighbors(
        self, node: NetworkNode, technology: Optional[LinkTechnology] = None
    ) -> Tuple[NetworkNode, ...]:
        """Nodes reachable from ``node`` over *ad-hoc* radio right now.

        With ``technology`` given, restrict to that radio; otherwise any
        shared ad-hoc technology counts.  Returns an immutable tuple in
        node-registration order (the order the naive sweep produced).
        """
        if not node.up:
            return ()
        cacheable = self._registered(node)
        key = (node.id, technology.name if technology is not None else None)
        if cacheable:
            self._validate_caches()
            entry = self._neighbors_cache.get(key)
            if entry is not None:
                entry_epoch, cached = entry
                if entry_epoch == self._epoch:
                    self.cache_stats["hits"] += 1
                    return cached
                if self._entry_fresh(entry_epoch, node.position):
                    self._neighbors_cache[key] = (self._epoch, cached)
                    self.cache_stats["hits"] += 1
                    self.cache_stats["revalidations"] += 1
                    return cached
            self.cache_stats["misses"] += 1
        # Any ad-hoc neighbour must sit within the longest usable ad-hoc
        # range of this node, so a single grid ring bounds the sweep.
        radius = -1.0
        for iface in node.usable_interfaces():
            tech = iface.technology
            if not tech.is_adhoc:
                continue
            if technology is not None and tech.name != technology.name:
                continue
            if tech.range_m > radius:
                radius = tech.range_m
        found: List[NetworkNode] = []
        if radius >= 0.0:
            candidates = self._grid.near(node.position, radius)
            candidates.sort(key=self._order.__getitem__)
            for other_id in candidates:
                if other_id == node.id:
                    continue
                other = self.nodes[other_id]
                if not other.up:
                    continue
                for link in self.links_between(node, other):
                    if link.via_backbone:
                        continue
                    if technology is not None and (
                        link.sender_technology.name != technology.name
                    ):
                        continue
                    found.append(other)
                    break
        result = tuple(found)
        if cacheable:
            self._neighbors_cache[key] = (self._epoch, result)
        return result

    def adjacency(self, adhoc_only: bool = False) -> AdjacencyView:
        """Snapshot of the connectivity graph as an :class:`AdjacencyView`.

        Ad-hoc edges are explicit; the backbone-attached set is kept as
        an implicit clique (one frozenset), so the snapshot costs
        O(up nodes + ad-hoc edges) regardless of how many nodes can
        reach the backbone.  Only *up* nodes appear as keys.  With the
        partition filter installed the clique is no longer complete, so
        the surviving backbone pairs are materialised explicitly (the
        chaos-scale worlds are small).  The returned view is cached and
        immutable — treat it as read-only.
        """
        self._validate_caches()
        cached = self._adjacency_cache.get(adhoc_only)
        if cached is not None:
            self.cache_stats["hits"] += 1
            return cached
        self.cache_stats["misses"] += 1
        sets: Dict[str, set] = {}
        up_nodes = [node for node in self.nodes.values() if node.up]
        for node in up_nodes:
            sets[node.id] = {other.id for other in self.neighbors(node)}
        backbone: FrozenSet[str] = frozenset()
        if not adhoc_only:
            attached = [
                node.id
                for node in up_nodes
                if self._has_backbone_access(node)
            ]
            link_filter = self._link_filter
            if link_filter is None:
                backbone = frozenset(attached)
            else:
                for index, a_id in enumerate(attached):
                    a_bucket = sets[a_id]
                    for b_id in attached[index + 1 :]:
                        if link_filter(a_id, b_id) and link_filter(b_id, a_id):
                            a_bucket.add(b_id)
                            sets[b_id].add(a_id)
        view = AdjacencyView(
            {
                node_id: tuple(sorted(neighbor_ids))
                for node_id, neighbor_ids in sets.items()
            },
            backbone,
        )
        self._adjacency_cache[adhoc_only] = view
        return view

    def _has_backbone_access(self, node: NetworkNode) -> bool:
        for iface in node.usable_interfaces():
            if iface.technology.infrastructure and self._infra_covered(node, iface):
                return True
        return False

    def reachable_set(
        self, start_id: str, adhoc_only: bool = False
    ) -> FrozenSet[str]:
        """Transitive closure of connectivity from ``start_id`` (BFS)."""
        self._validate_caches()
        key = (start_id, adhoc_only)
        cached = self._reachable_cache.get(key)
        if cached is not None:
            self.cache_stats["hits"] += 1
            return cached
        self.cache_stats["misses"] += 1
        view = self.adjacency(adhoc_only=adhoc_only)
        result = bfs_reachable(view, start_id)
        self._reachable_cache[key] = result
        return result

    def shortest_path(
        self, source_id: str, target_id: str, adhoc_only: bool = False
    ) -> Optional[List[str]]:
        """Hop-minimal node path from source to target, or None."""
        if source_id == target_id:
            return [source_id]
        self._validate_caches()
        key = (source_id, target_id, adhoc_only)
        cached = self._path_cache.get(key, _MISSING)
        if cached is not _MISSING:
            self.cache_stats["hits"] += 1
            return list(cached) if cached is not None else None  # type: ignore[arg-type]
        self.cache_stats["misses"] += 1
        view = self.adjacency(adhoc_only=adhoc_only)
        tree = bfs_tree(view, source_id, target_id)
        path = walk_tree(tree, source_id, target_id)
        self._path_cache[key] = tuple(path) if path is not None else None
        return path


#: The ISSUE/design name for the simulated physical fabric.
PhysicalNetwork = Network
