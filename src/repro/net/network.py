"""The network: node registry and instantaneous connectivity.

Connectivity is a pure function of node positions and interface states,
so mobility and churn are reflected immediately:

* two usable *ad-hoc* interfaces of the same technology connect when the
  nodes are within radio range;
* two usable *attached* infrastructure interfaces (of any technologies)
  connect through the fixed backbone — e.g. a GPRS handset reaching a
  LAN server; the path takes the minimum bandwidth and the sum of
  latencies plus a backbone hop.

Topology queries are *incremental* rather than recomputed: every
mutation that can change connectivity (node add, move, crash/restart,
interface enable/disable/attach/detach) bumps a **topology epoch**, and
``links_between``/``neighbors``/``adjacency``/``reachable_set``/
``shortest_path`` results are cached until the epoch moves.  Candidate
enumeration uses a :class:`~repro.net.geometry.SpatialGrid` so range
queries touch only nearby nodes instead of the whole registry.  The
cached fast paths are bit-identical to the naive sweeps kept in
:mod:`repro.net.reference` (property-tested under random mobility).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from ..errors import NetworkError
from ..sim import Environment
from .geometry import SpatialGrid
from .node import Interface, NetworkNode
from .technologies import BACKBONE_LATENCY_S, LinkTechnology


@dataclass(frozen=True)
class Link:
    """The effective path between two nodes at one instant."""

    sender_technology: LinkTechnology
    receiver_technology: LinkTechnology
    bandwidth_bps: float
    latency_s: float
    loss: float
    via_backbone: bool

    def transfer_time(self, size_bytes: int) -> float:
        return size_bytes * 8.0 / self.bandwidth_bps

    @property
    def name(self) -> str:
        if self.via_backbone:
            return (
                f"{self.sender_technology.name}~backbone~"
                f"{self.receiver_technology.name}"
            )
        return self.sender_technology.name

    @property
    def is_free(self) -> bool:
        """True when neither endpoint pays a metered tariff for it."""
        return (
            self.sender_technology.cost_per_mb == 0.0
            and self.sender_technology.cost_per_minute == 0.0
            and self.receiver_technology.cost_per_mb == 0.0
            and self.receiver_technology.cost_per_minute == 0.0
        )


def _direct_link(tech: LinkTechnology) -> Link:
    return Link(
        sender_technology=tech,
        receiver_technology=tech,
        bandwidth_bps=tech.bandwidth_bps,
        latency_s=tech.latency_s,
        loss=tech.loss,
        via_backbone=False,
    )


def _backbone_link(sender: LinkTechnology, receiver: LinkTechnology) -> Link:
    return Link(
        sender_technology=sender,
        receiver_technology=receiver,
        bandwidth_bps=min(sender.bandwidth_bps, receiver.bandwidth_bps),
        latency_s=sender.latency_s + BACKBONE_LATENCY_S + receiver.latency_s,
        loss=1.0 - (1.0 - sender.loss) * (1.0 - receiver.loss),
        via_backbone=True,
    )


#: Orders candidate links; the default prefers free links, then faster ones.
LinkPolicy = Callable[[Link], tuple]


def prefer_free_then_fast(link: Link) -> tuple:
    """Default link selection: free links first, then highest bandwidth."""
    return (0 if link.is_free else 1, -link.bandwidth_bps, link.latency_s)


def prefer_fast(link: Link) -> tuple:
    """Latency/bandwidth-greedy selection, ignoring tariffs."""
    return (-link.bandwidth_bps, link.latency_s)


#: Sentinel distinguishing "not cached" from a cached ``None`` path.
_MISSING = object()


class Network:
    """Registry of nodes plus epoch-cached connectivity queries."""

    #: Default spatial-hash cell size; grown to the longest radio range
    #: seen so a single query ring covers one full range circle.
    DEFAULT_CELL_M = 100.0

    def __init__(self, env: Environment) -> None:
        self.env = env
        self.nodes: Dict[str, NetworkNode] = {}
        self._grid = SpatialGrid(cell_size=self.DEFAULT_CELL_M)
        #: Node id -> registration index; imposes registry iteration
        #: order on grid candidates so results match the naive sweep.
        self._order: Dict[str, int] = {}
        self._epoch = 0
        self._cache_epoch = -1
        self._links_cache: Dict[Tuple[str, str], Tuple[Link, ...]] = {}
        self._neighbors_cache: Dict[
            Tuple[str, Optional[str]], Tuple[NetworkNode, ...]
        ] = {}
        self._adjacency_cache: Dict[bool, Dict[str, FrozenSet[str]]] = {}
        self._reachable_cache: Dict[Tuple[str, bool], FrozenSet[str]] = {}
        self._path_cache: Dict[Tuple[str, str, bool], object] = {}
        self._coverage_cache: Dict[Tuple[str, str], bool] = {}
        self.cache_stats = {"hits": 0, "misses": 0, "invalidations": 0}
        #: Optional admission predicate over (sender id, receiver id):
        #: when set, pairs it rejects have no links at all — the
        #: injection point :mod:`repro.faults` uses to model network
        #: partitions.  Installing/clearing it bumps the topology epoch
        #: so every cached connectivity answer is recomputed.
        self._link_filter: Optional[Callable[[str, str], bool]] = None

    def add_node(self, node: NetworkNode) -> NetworkNode:
        if node.id in self.nodes:
            raise NetworkError(f"duplicate node id {node.id!r}")
        if node._network is not None and node._network is not self:
            raise NetworkError(
                f"node {node.id!r} already belongs to another network"
            )
        self.nodes[node.id] = node
        self._order[node.id] = len(self._order)
        node._network = self
        for interface in node.interfaces.values():
            self._note_range(interface.technology)
        self._grid.insert(node.id, node.position)
        self._epoch += 1
        return node

    def node(self, node_id: str) -> NetworkNode:
        try:
            return self.nodes[node_id]
        except KeyError:
            raise NetworkError(f"unknown node {node_id!r}") from None

    def __contains__(self, node_id: str) -> bool:
        return node_id in self.nodes

    def __len__(self) -> int:
        return len(self.nodes)

    # -- topology epoch -------------------------------------------------------

    @property
    def topology_epoch(self) -> int:
        """Monotonic counter; unchanged epoch guarantees identical
        answers from every connectivity query."""
        return self._epoch

    def cache_info(self) -> Dict[str, float]:
        """Flat snapshot of cache effectiveness for reports/benchmarks."""
        return {
            "epoch": float(self._epoch),
            "hits": float(self.cache_stats["hits"]),
            "misses": float(self.cache_stats["misses"]),
            "invalidations": float(self.cache_stats["invalidations"]),
            "grid_cell_m": self._grid.cell_size,
        }

    @property
    def link_filter(self) -> Optional[Callable[[str, str], bool]]:
        return self._link_filter

    def set_link_filter(
        self, predicate: Optional[Callable[[str, str], bool]]
    ) -> None:
        """Install (or with ``None`` clear) the link admission filter.

        The predicate sees ``(sender id, receiver id)`` and returns
        False to sever every link between the pair.  It must be pure
        with respect to the topology epoch: the filter's answers are
        baked into the connectivity caches, so whoever mutates the
        predicate's underlying state must call this setter again (each
        call bumps the epoch).
        """
        self._link_filter = predicate
        self._epoch += 1

    def _note_range(self, technology: LinkTechnology) -> None:
        if technology.range_m > self._grid.cell_size:
            self._grid.rebuild(technology.range_m)

    # Mutation hooks, called from NetworkNode/Interface.

    def _node_moved(self, node: NetworkNode) -> None:
        if self.nodes.get(node.id) is node:
            self._grid.move(node.id, node.position)
            self._epoch += 1

    def _topology_changed(self, node: NetworkNode) -> None:
        self._epoch += 1

    def _interface_added(self, node: NetworkNode, technology: LinkTechnology) -> None:
        self._note_range(technology)
        self._epoch += 1

    def _validate_caches(self) -> None:
        if self._cache_epoch != self._epoch:
            self._links_cache.clear()
            self._neighbors_cache.clear()
            self._adjacency_cache.clear()
            self._reachable_cache.clear()
            self._path_cache.clear()
            self._coverage_cache.clear()
            self._cache_epoch = self._epoch
            self.cache_stats["invalidations"] += 1

    def _registered(self, node: NetworkNode) -> bool:
        return self.nodes.get(node.id) is node

    # -- connectivity --------------------------------------------------------

    def links_between(self, a: NetworkNode, b: NetworkNode) -> Tuple[Link, ...]:
        """Every link that could carry a message from ``a`` to ``b`` now."""
        if a.id == b.id:
            raise NetworkError(f"node {a.id!r} cannot link to itself")
        cacheable = self._registered(a) and self._registered(b)
        if cacheable:
            self._validate_caches()
            key = (a.id, b.id)
            cached = self._links_cache.get(key)
            if cached is not None:
                self.cache_stats["hits"] += 1
                return cached
            self.cache_stats["misses"] += 1
        links = self._compute_links(a, b)
        if cacheable:
            self._links_cache[key] = links
        return links

    def _compute_links(self, a: NetworkNode, b: NetworkNode) -> Tuple[Link, ...]:
        if not (a.up and b.up):
            return ()
        if self._link_filter is not None and not self._link_filter(a.id, b.id):
            return ()
        links: List[Link] = []
        a_ifaces = a.usable_interfaces()
        b_by_name = {i.technology.name: i for i in b.usable_interfaces()}
        # Direct ad-hoc links: same technology, within range.
        for iface in a_ifaces:
            tech = iface.technology
            peer = b_by_name.get(tech.name)
            if peer is None or not tech.is_adhoc:
                continue
            if a.position.distance_to(b.position) <= tech.range_m:
                links.append(_direct_link(tech))
        # Backbone links: any attached infrastructure pair.  Radio-based
        # infrastructure (hotspot Wi-Fi) additionally needs an in-range
        # base station/access point.
        a_infra = [
            i
            for i in a_ifaces
            if i.technology.infrastructure and self._infra_covered(a, i)
        ]
        b_infra = [
            i
            for i in b_by_name.values()
            if i.technology.infrastructure and self._infra_covered(b, i)
        ]
        for sender in a_infra:
            for receiver in b_infra:
                links.append(
                    _backbone_link(sender.technology, receiver.technology)
                )
        return tuple(links)

    def _infra_covered(self, node: NetworkNode, interface: Interface) -> bool:
        """True when ``node`` has coverage for an infrastructure radio.

        Wired/cellular technologies (``range_m == 0``) are covered
        everywhere; radio infrastructure (e.g. hotspot Wi-Fi) needs a
        *fixed* node carrying the same technology within range — the
        access point.  Fixed nodes are their own base stations.
        """
        technology = interface.technology
        if technology.range_m <= 0 or node.fixed:
            return True
        cacheable = self._registered(node)
        if cacheable:
            self._validate_caches()
            key = (node.id, technology.name)
            cached = self._coverage_cache.get(key)
            if cached is not None:
                return cached
        covered = False
        for other_id in self._grid.near(node.position, technology.range_m):
            if other_id == node.id:
                continue
            other = self.nodes[other_id]
            if not other.fixed or not other.up:
                continue
            access_point = other.interfaces.get(technology.name)
            if access_point is None or not access_point.enabled:
                continue
            covered = True
            break
        if cacheable:
            self._coverage_cache[key] = covered
        return covered

    def best_link(
        self,
        a: NetworkNode,
        b: NetworkNode,
        policy: LinkPolicy = prefer_free_then_fast,
    ) -> Optional[Link]:
        """The preferred link from ``a`` to ``b``, or None if unreachable."""
        links = self.links_between(a, b)
        if not links:
            return None
        return min(links, key=policy)

    def connected(self, a_id: str, b_id: str) -> bool:
        return self.best_link(self.node(a_id), self.node(b_id)) is not None

    def neighbors(
        self, node: NetworkNode, technology: Optional[LinkTechnology] = None
    ) -> Tuple[NetworkNode, ...]:
        """Nodes reachable from ``node`` over *ad-hoc* radio right now.

        With ``technology`` given, restrict to that radio; otherwise any
        shared ad-hoc technology counts.  Returns an immutable tuple in
        node-registration order (the order the naive sweep produced).
        """
        if not node.up:
            return ()
        cacheable = self._registered(node)
        key = (node.id, technology.name if technology is not None else None)
        if cacheable:
            self._validate_caches()
            cached = self._neighbors_cache.get(key)
            if cached is not None:
                self.cache_stats["hits"] += 1
                return cached
            self.cache_stats["misses"] += 1
        # Any ad-hoc neighbour must sit within the longest usable ad-hoc
        # range of this node, so a single grid ring bounds the sweep.
        radius = -1.0
        for iface in node.usable_interfaces():
            tech = iface.technology
            if not tech.is_adhoc:
                continue
            if technology is not None and tech.name != technology.name:
                continue
            if tech.range_m > radius:
                radius = tech.range_m
        found: List[NetworkNode] = []
        if radius >= 0.0:
            candidates = self._grid.near(node.position, radius)
            candidates.sort(key=self._order.__getitem__)
            for other_id in candidates:
                if other_id == node.id:
                    continue
                other = self.nodes[other_id]
                if not other.up:
                    continue
                for link in self.links_between(node, other):
                    if link.via_backbone:
                        continue
                    if technology is not None and (
                        link.sender_technology.name != technology.name
                    ):
                        continue
                    found.append(other)
                    break
        result = tuple(found)
        if cacheable:
            self._neighbors_cache[key] = result
        return result

    def adjacency(self, adhoc_only: bool = False) -> Dict[str, FrozenSet[str]]:
        """Snapshot of the connectivity graph as an adjacency mapping.

        The returned mapping is a cached, immutable-valued snapshot —
        treat it as read-only.
        """
        self._validate_caches()
        cached = self._adjacency_cache.get(adhoc_only)
        if cached is not None:
            self.cache_stats["hits"] += 1
            return cached
        self.cache_stats["misses"] += 1
        sets: Dict[str, set] = {node_id: set() for node_id in self.nodes}
        # Ad-hoc edges via per-node range queries (symmetric relation).
        for node in self.nodes.values():
            if not node.up:
                continue
            bucket = sets[node.id]
            for other in self.neighbors(node):
                bucket.add(other.id)
        if not adhoc_only:
            # Every pair of backbone-attached nodes connects: a clique.
            attached = [
                node
                for node in self.nodes.values()
                if node.up and self._has_backbone_access(node)
            ]
            link_filter = self._link_filter
            for index, a in enumerate(attached):
                a_bucket = sets[a.id]
                for b in attached[index + 1 :]:
                    if link_filter is not None and not (
                        link_filter(a.id, b.id) and link_filter(b.id, a.id)
                    ):
                        continue
                    a_bucket.add(b.id)
                    sets[b.id].add(a.id)
        graph = {
            node_id: frozenset(neighbor_ids)
            for node_id, neighbor_ids in sets.items()
        }
        self._adjacency_cache[adhoc_only] = graph
        return graph

    def _has_backbone_access(self, node: NetworkNode) -> bool:
        for iface in node.usable_interfaces():
            if iface.technology.infrastructure and self._infra_covered(node, iface):
                return True
        return False

    def reachable_set(
        self, start_id: str, adhoc_only: bool = False
    ) -> FrozenSet[str]:
        """Transitive closure of connectivity from ``start_id`` (BFS)."""
        self._validate_caches()
        key = (start_id, adhoc_only)
        cached = self._reachable_cache.get(key)
        if cached is not None:
            self.cache_stats["hits"] += 1
            return cached
        self.cache_stats["misses"] += 1
        graph = self.adjacency(adhoc_only=adhoc_only)
        seen = {start_id}
        frontier = [start_id]
        while frontier:
            current = frontier.pop()
            for neighbor in graph.get(current, ()):
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        result = frozenset(seen)
        self._reachable_cache[key] = result
        return result

    def shortest_path(
        self, source_id: str, target_id: str, adhoc_only: bool = False
    ) -> Optional[List[str]]:
        """Hop-minimal node path from source to target, or None."""
        if source_id == target_id:
            return [source_id]
        self._validate_caches()
        key = (source_id, target_id, adhoc_only)
        cached = self._path_cache.get(key, _MISSING)
        if cached is not _MISSING:
            self.cache_stats["hits"] += 1
            return list(cached) if cached is not None else None  # type: ignore[arg-type]
        self.cache_stats["misses"] += 1
        graph = self.adjacency(adhoc_only=adhoc_only)
        previous: Dict[str, str] = {}
        seen = {source_id}
        frontier = [source_id]
        path: Optional[List[str]] = None
        while frontier and path is None:
            next_frontier: List[str] = []
            for current in frontier:
                for neighbor in sorted(graph.get(current, ())):
                    if neighbor in seen:
                        continue
                    seen.add(neighbor)
                    previous[neighbor] = current
                    if neighbor == target_id:
                        walk = [target_id]
                        while walk[-1] != source_id:
                            walk.append(previous[walk[-1]])
                        walk.reverse()
                        path = walk
                        break
                    next_frontier.append(neighbor)
                if path is not None:
                    break
            frontier = next_frontier
        self._path_cache[key] = tuple(path) if path is not None else None
        return path


#: The ISSUE/design name for the simulated physical fabric.
PhysicalNetwork = Network
