"""Messages moved by the network substrate.

A :class:`Message` is the unit of transfer between hosts.  Payloads are
ordinary Python objects (the middleware layers put typed envelopes in
them); ``size_bytes`` is the *modelled* wire size used for timing and
cost — payload objects carry their own size via the LMU serializer or an
explicit value.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

_message_ids = itertools.count(1)


def next_message_id() -> int:
    """Process-wide unique, monotonically increasing message id."""
    return next(_message_ids)


@contextmanager
def fresh_message_ids() -> Iterator[None]:
    """Deterministic message-id scope: ids restart at 1 inside.

    The process-wide counter makes a run's message ids — and therefore
    its captured spans, which record ``msg_id`` for correlation — a
    function of *everything that ran earlier in the process*: the same
    seed replayed as the second job in a worker produced different
    report bytes than a fresh process.  Scenario harnesses (chaos,
    hostile, :mod:`repro.runner` jobs) run inside this scope so every
    run allocates ids from 1 regardless of process history; the outer
    stream is restored on exit, so worlds outside the scope keep their
    uniqueness guarantee (correlation maps never see a reused id).
    """
    global _message_ids
    saved = _message_ids
    _message_ids = itertools.count(1)
    try:
        yield
    finally:
        _message_ids = saved


#: Fixed per-message envelope overhead (headers, framing), in bytes.
HEADER_BYTES = 64


@dataclass
class Message:
    """One network message."""

    source: str
    destination: str
    kind: str
    payload: object = None
    size_bytes: int = 0
    id: int = field(default_factory=next_message_id)
    created_at: float = 0.0
    #: id of the request this message answers, for RPC correlation.
    in_reply_to: Optional[int] = None
    #: technology name the message actually travelled over (set on delivery).
    via: Optional[str] = None
    hops: int = 0
    #: Causal span context (``{"trace": id, "span": id}``) propagated
    #: across hosts, like distributed-tracing headers.  Observability
    #: only: carries no modelled wire bytes.
    trace_context: Optional[Dict[str, int]] = None
    #: Set by the fault-injection layer: the payload was damaged in
    #: transit.  Receivers model a checksum pass — a corrupted message
    #: is discarded at dispatch, never handled.
    corrupted: bool = False
    #: Sim-time this copy reached the destination inbox.  Stamped by the
    #: transport (and the fault-injection delivery hook) only while span
    #: tracing is enabled — the hop timestamp the trace analyzer uses to
    #: separate link transit from injected delivery stalls.  0.0 means
    #: "not stamped" (tracing off, or never delivered).
    delivered_at: float = 0.0

    @property
    def wire_size(self) -> int:
        """Modelled bytes on the wire, including envelope overhead."""
        return self.size_bytes + HEADER_BYTES

    def reply(self, kind: str, payload: object = None, size_bytes: int = 0) -> "Message":
        """A response message addressed back to this message's source.

        The reply joins the request's trace, so both legs of an RPC
        land in one span tree.
        """
        return Message(
            source=self.destination,
            destination=self.source,
            kind=kind,
            payload=payload,
            size_bytes=size_bytes,
            in_reply_to=self.id,
            trace_context=(
                dict(self.trace_context) if self.trace_context else None
            ),
        )

    def __repr__(self) -> str:
        return (
            f"<Message #{self.id} {self.kind} {self.source}->{self.destination} "
            f"{self.wire_size}B>"
        )
