"""Multi-hop relaying over the ad-hoc connectivity graph.

Direct links only reach one hop; the router forwards a message along a
BFS-shortest path, paying every hop's transmission time and loss.  It
re-plans before each hop, so paths survive moderate mobility; it gives
up when the destination becomes unreachable.

Path planning goes through an epoch-memoised :class:`RoutingTable`:
one BFS from a source yields the shortest-path tree to *every*
destination, and the tree stays valid until the network's topology
epoch moves.  Repeated sends between the same endpoints under a stable
topology therefore skip BFS entirely, and a relay's per-hop re-plans
reuse the trees built for earlier traffic.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from ..errors import Unreachable
from ..sim import Environment, Process
from .message import Message
from .network import Network
from .transport import Transport


class RoutingTable:
    """Epoch-memoised shortest-path trees over one network.

    ``path(source, target)`` is bit-identical to
    :meth:`Network.shortest_path` (same BFS with sorted tie-breaking);
    the difference is that one tree answers every target for its
    source, and trees are cached against the topology epoch.
    """

    def __init__(self, network: Network, adhoc_only: bool = True) -> None:
        self.network = network
        self.adhoc_only = adhoc_only
        self._epoch = -1
        #: source id -> {discovered node -> its BFS predecessor}.
        self._trees: Dict[str, Dict[str, str]] = {}
        self.stats = {"hits": 0, "misses": 0}

    def _tree(self, source_id: str) -> Dict[str, str]:
        epoch = self.network.topology_epoch
        if epoch != self._epoch:
            self._trees.clear()
            self._epoch = epoch
        tree = self._trees.get(source_id)
        if tree is not None:
            self.stats["hits"] += 1
            return tree
        self.stats["misses"] += 1
        graph = self.network.adjacency(adhoc_only=self.adhoc_only)
        previous: Dict[str, str] = {}
        seen = {source_id}
        frontier = [source_id]
        while frontier:
            next_frontier: List[str] = []
            for current in frontier:
                for neighbor in sorted(graph.get(current, ())):
                    if neighbor in seen:
                        continue
                    seen.add(neighbor)
                    previous[neighbor] = current
                    next_frontier.append(neighbor)
            frontier = next_frontier
        self._trees[source_id] = previous
        return previous

    def path(self, source_id: str, target_id: str) -> Optional[List[str]]:
        """Hop-minimal path, or None when the target is unreachable."""
        if source_id == target_id:
            return [source_id]
        tree = self._tree(source_id)
        if target_id not in tree:
            return None
        walk = [target_id]
        while walk[-1] != source_id:
            walk.append(tree[walk[-1]])
        walk.reverse()
        return walk

    def next_hop(self, source_id: str, target_id: str) -> Optional[str]:
        """The first relay on the path, or None when unreachable."""
        path = self.path(source_id, target_id)
        if path is None or len(path) < 2:
            return None
        return path[1]


class Router:
    """Hop-by-hop forwarding built on :class:`Transport`."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        transport: Transport,
        adhoc_only: bool = True,
        max_hops: int = 32,
    ) -> None:
        self.env = env
        self.network = network
        self.transport = transport
        self.adhoc_only = adhoc_only
        self.max_hops = max_hops
        self.table = RoutingTable(network, adhoc_only=adhoc_only)

    def send_multihop(self, message: Message) -> Process:
        """Relay ``message`` towards its destination; resolves to the hop
        count on success, and fails with :class:`Unreachable` when no
        path exists (checked before every hop)."""
        return self.env.process(
            self._relay(message), name=f"route#{message.id}"
        )

    def _relay(self, message: Message) -> Generator:
        current = message.source
        hops = 0
        if message.created_at == 0.0:
            message.created_at = self.env.now
        while current != message.destination:
            if hops >= self.max_hops:
                raise Unreachable(
                    f"gave up after {hops} hops towards {message.destination}"
                )
            path = self.table.path(current, message.destination)
            if path is None or len(path) < 2:
                raise Unreachable(
                    f"no path from {current} to {message.destination}"
                )
            next_hop = path[1]
            leg = Message(
                source=current,
                destination=next_hop,
                kind="net.relay",
                payload=message,
                size_bytes=message.size_bytes,
                created_at=message.created_at,
            )
            yield self.transport.send_reliable(leg)
            hops += 1
            current = next_hop
            # The leg sits in the hop's inbox; reclaim it so dispatch loops
            # never see relay plumbing.
            hop_node = self.network.node(current)
            removal = hop_node.inbox.get(
                predicate=lambda m, leg_id=leg.id: m.id == leg_id
            )
            if removal.triggered:
                yield removal
            else:
                # A dispatcher consumed it first; it is expected to ignore
                # the reserved "net.relay" kind.
                removal.cancel()
        message.hops = hops
        message.via = "multihop"
        destination_node = self.network.node(message.destination)
        yield destination_node.inbox.put(message)
        return hops
