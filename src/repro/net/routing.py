"""Multi-hop relaying over the ad-hoc connectivity graph.

Direct links only reach one hop; the router forwards a message along a
BFS-shortest path, paying every hop's transmission time and loss.  It
re-plans before each hop, so paths survive moderate mobility; it gives
up when the destination becomes unreachable.
"""

from __future__ import annotations

from typing import Generator

from ..errors import Unreachable
from ..sim import Environment, Process
from .message import Message
from .network import Network
from .transport import Transport


class Router:
    """Hop-by-hop forwarding built on :class:`Transport`."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        transport: Transport,
        adhoc_only: bool = True,
        max_hops: int = 32,
    ) -> None:
        self.env = env
        self.network = network
        self.transport = transport
        self.adhoc_only = adhoc_only
        self.max_hops = max_hops

    def send_multihop(self, message: Message) -> Process:
        """Relay ``message`` towards its destination; resolves to the hop
        count on success, and fails with :class:`Unreachable` when no
        path exists (checked before every hop)."""
        return self.env.process(
            self._relay(message), name=f"route#{message.id}"
        )

    def _relay(self, message: Message) -> Generator:
        current = message.source
        hops = 0
        if message.created_at == 0.0:
            message.created_at = self.env.now
        while current != message.destination:
            if hops >= self.max_hops:
                raise Unreachable(
                    f"gave up after {hops} hops towards {message.destination}"
                )
            path = self.network.shortest_path(
                current, message.destination, adhoc_only=self.adhoc_only
            )
            if path is None or len(path) < 2:
                raise Unreachable(
                    f"no path from {current} to {message.destination}"
                )
            next_hop = path[1]
            leg = Message(
                source=current,
                destination=next_hop,
                kind="net.relay",
                payload=message,
                size_bytes=message.size_bytes,
                created_at=message.created_at,
            )
            yield self.transport.send_reliable(leg)
            hops += 1
            current = next_hop
            # The leg sits in the hop's inbox; reclaim it so dispatch loops
            # never see relay plumbing.
            hop_node = self.network.node(current)
            removal = hop_node.inbox.get(
                predicate=lambda m, leg_id=leg.id: m.id == leg_id
            )
            if removal.triggered:
                yield removal
            else:
                # A dispatcher consumed it first; it is expected to ignore
                # the reserved "net.relay" kind.
                removal.cancel()
        message.hops = hops
        message.via = "multihop"
        destination_node = self.network.node(message.destination)
        yield destination_node.inbox.put(message)
        return hops
