"""Multi-hop relaying over the ad-hoc connectivity graph.

Direct links only reach one hop; the router forwards a message along a
BFS-shortest path, paying every hop's transmission time and loss.  It
re-plans before each hop, so paths survive moderate mobility; it gives
up when the destination becomes unreachable.

Path planning goes through an epoch-memoised :class:`RoutingTable`:
one BFS from a source yields the shortest-path tree to *every*
destination.  Trees are not discarded wholesale when the topology
epoch moves — the table asks the network *which* nodes changed
(:meth:`Network.dirty_since`) and drops only the trees whose component
a dirty node touches, so unrelated traffic keeps its memoised routes
across localised mobility.

For city-scale worlds :class:`HierarchicalRouter` plans over a coarse
graph of :class:`~repro.net.geometry.SpatialGrid` cells first and only
runs node-level BFS inside the resulting corridor.  Its paths may be
longer than flat-BFS paths, but never by more than the documented
stretch bound, and its *reachability* answers are bit-identical to the
naive reference sweeps (see docs/PERFORMANCE.md, "City-scale
routing").
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Generator,
    List,
    Optional,
    Set,
    Tuple,
)

from ..errors import Unreachable
from ..sim import Environment, MetricsRegistry, Process
from .message import Message
from .network import Cell, Network, bfs_tree, walk_tree
from .transport import Transport

#: Deterministic neighbour-cell visit order for the coarse cell BFS.
_RING = (
    (-1, -1), (-1, 0), (-1, 1),
    (0, -1), (0, 1),
    (1, -1), (1, 0), (1, 1),
)


class RoutingTable:
    """Dirty-repaired shortest-path trees over one network.

    ``path(source, target)`` is bit-identical to
    :meth:`Network.shortest_path` (same BFS with sorted tie-breaking);
    the difference is that one tree answers every target for its
    source, and trees survive topology changes that provably cannot
    affect them.  A tree from ``source`` covers ``source``'s entire
    connected component, so it must be rebuilt exactly when an edge
    inside that component changed — i.e. when some dirty node either
    *was* a member (it lost edges there, or crashed) or currently
    neighbours a member (it gained edges into the component).  Trees
    failing both tests are provably unchanged and are kept.
    """

    def __init__(
        self,
        network: Network,
        adhoc_only: bool = True,
        metrics: Optional[MetricsRegistry] = None,
        repair: bool = True,
    ) -> None:
        self.network = network
        self.adhoc_only = adhoc_only
        self.metrics = metrics
        #: With repair off, any epoch bump flushes every tree (the
        #: pre-dirty-log behaviour; kept as the benchmark baseline).
        self.repair = repair
        self._epoch = -1
        #: source id -> {discovered node -> its BFS predecessor}.
        self._trees: Dict[str, Dict[str, str]] = {}
        #: source id -> every node its tree covers (its component).
        self._members: Dict[str, FrozenSet[str]] = {}
        self.stats = {"hits": 0, "misses": 0, "repairs": 0, "flushes": 0}

    def _count(
        self, key: str, amount: int = 1, node: Optional[str] = None
    ) -> None:
        self.stats[key] += amount
        if self.metrics is not None:
            # The labeled child forwards to the flat family total, so
            # only one of the two is incremented per event.
            if node is None:
                self.metrics.counter(f"routing.tree_{key}").increment(amount)
            else:
                self.metrics.counter(
                    f"routing.tree_{key}", labels={"node": node}
                ).increment(amount)

    def _flush(self) -> None:
        if self._trees:
            self.stats["flushes"] += 1
            if self.metrics is not None:
                self.metrics.counter("routing.flushes").increment()
        self._trees.clear()
        self._members.clear()

    def _sync(self) -> None:
        epoch = self.network.topology_epoch
        if epoch == self._epoch:
            return
        if not self.repair or not self._trees:
            self._flush()
            self._epoch = epoch
            return
        _, dirty = self.network.dirty_since(self._epoch)
        self._epoch = epoch
        if dirty is None:
            # Global change (partition filter, grid rebuild, or the
            # journal aged out): nothing can be proven unaffected.
            self._flush()
            return
        if dirty:
            self._repair(dirty)

    def _repair(self, dirty: FrozenSet[str]) -> None:
        view = self.network.adjacency(adhoc_only=self.adhoc_only)
        # A tree is affected iff its members intersect the dirty nodes
        # or their *current* neighbourhoods (see class docstring).
        touched: Set[str] = set(dirty)
        backbone_touched = False
        for node_id in dirty:
            touched.update(view.adhoc_neighbors(node_id))
            if node_id in view.backbone:
                backbone_touched = True
        dropped = 0
        for source in list(self._trees):
            members = self._members[source]
            if not touched.isdisjoint(members) or (
                backbone_touched and not view.backbone.isdisjoint(members)
            ):
                del self._trees[source]
                del self._members[source]
                dropped += 1
        if dropped:
            self.stats["repairs"] += dropped
            if self.metrics is not None:
                self.metrics.counter("routing.repairs").increment(dropped)

    def _tree(self, source_id: str) -> Dict[str, str]:
        self._sync()
        tree = self._trees.get(source_id)
        if tree is not None:
            self._count("hits", node=source_id)
            return tree
        self._count("misses", node=source_id)
        view = self.network.adjacency(adhoc_only=self.adhoc_only)
        tree = bfs_tree(view, source_id)
        self._trees[source_id] = tree
        self._members[source_id] = frozenset(tree).union((source_id,))
        return tree

    def path(self, source_id: str, target_id: str) -> Optional[List[str]]:
        """Hop-minimal path, or None when the target is unreachable."""
        if source_id == target_id:
            return [source_id]
        return walk_tree(self._tree(source_id), source_id, target_id)

    def next_hop(self, source_id: str, target_id: str) -> Optional[str]:
        """The first relay on the path, or None when unreachable."""
        path = self.path(source_id, target_id)
        if path is None or len(path) < 2:
            return None
        return path[1]


class HierarchicalRouter:
    """Cell-first path planning for city-scale ad-hoc worlds.

    Flat BFS touches the whole connected component per tree; at 10k+
    nodes that is the scaling wall.  This planner exploits the spatial
    structure the :class:`~repro.net.geometry.SpatialGrid` already
    maintains — a radio link never spans more than one cell per axis,
    because the cell size is at least the longest radio range — so:

    1. **Corridor first.**  Dilate the straight cell-to-cell walk from
       the source's cell to the target's by one ring and BFS only over
       nodes inside it.  In dense worlds this finds a near-shortest
       path after touching O(distance × nodes-per-cell) nodes.
    2. **Coarse certificate.**  If the corridor misses, BFS over
       *occupied cells* (cells holding at least one up node, 8-connected).
       Any node-level path induces a cell-level path, so cell-level
       unreachability is an **exact** negative answer.  Otherwise the
       cell path, dilated, gives a second corridor to try.
    3. **Flat fallback.**  If both corridors miss (sparse or
       maze-like worlds), delegate to the flat :class:`RoutingTable`.

    *Reachability is bit-identical to flat BFS* (positives come from
    real node-level BFS, negatives only from the exact certificate or
    the flat fallback).  *Hop counts are not*: a corridor path is kept
    only while ``hops ≤ stretch × max(cell_distance, 1) + 2``; since a
    flat path needs at least ``cell_distance`` hops, accepted paths
    are within ``stretch × flat_hops + 2`` of optimal, and fallback
    paths are optimal outright.  Worlds smaller than
    ``flat_threshold`` nodes — and any query over the backbone
    (``adhoc_only=False``), where the implicit clique makes hierarchy
    pointless — skip straight to the flat table.

    Planned paths are cached per (source, target) and invalidated with
    the network's dirty-cell journal: a cached path stays valid until
    some cell it crosses shows up dirty (negatives die on any change).
    """

    def __init__(
        self,
        network: Network,
        adhoc_only: bool = True,
        flat_threshold: int = 256,
        stretch: int = 3,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if stretch < 1:
            raise ValueError("stretch must be >= 1")
        self.network = network
        self.adhoc_only = adhoc_only
        self.flat_threshold = flat_threshold
        self.stretch = stretch
        self.metrics = metrics
        self.table = RoutingTable(network, adhoc_only=adhoc_only, metrics=metrics)
        self._epoch = -1
        self._cell_size: Optional[float] = None
        #: Cells currently holding >= 1 up node (None = needs rebuild).
        self._occupied: Optional[Set[Cell]] = None
        #: (source, target) -> (path tuple or None, cells the path
        #: crosses or None).  ``cells=None`` marks answers that any
        #: topology change can overturn (negatives).
        self._paths: Dict[
            Tuple[str, str],
            Tuple[Optional[Tuple[str, ...]], Optional[FrozenSet[Cell]]],
        ] = {}
        self.stats = {
            "hits": 0,
            "misses": 0,
            "flat": 0,
            "greedy": 0,
            "corridor": 0,
            "cell_corridor": 0,
            "cell_unreachable": 0,
            "flat_fallback": 0,
        }

    def _count(self, key: str, node: Optional[str] = None) -> None:
        self.stats[key] += 1
        if self.metrics is not None:
            # The labeled child forwards to the flat family total, so
            # only one of the two is incremented per event.
            if node is None:
                self.metrics.counter(f"routing.hier.{key}").increment()
            else:
                self.metrics.counter(
                    f"routing.hier.{key}", labels={"node": node}
                ).increment()

    # -- coarse layer maintenance --------------------------------------------

    def _sync(self) -> None:
        network = self.network
        epoch = network.topology_epoch
        grid_size = network.grid.cell_size
        if epoch == self._epoch and grid_size == self._cell_size:
            return
        if self._cell_size != grid_size or self._epoch < 0:
            # First use, or the grid was rebuilt (every cell id is new).
            self._occupied = None
            self._paths.clear()
        else:
            _, cells = network.dirty_cells_since(self._epoch)
            if cells is None:
                self._occupied = None
                self._paths.clear()
            elif cells:
                self._apply_dirty(cells)
        self._epoch = epoch
        self._cell_size = grid_size

    def _apply_dirty(self, cells: FrozenSet[Cell]) -> None:
        if self._occupied is not None:
            grid = self.network.grid
            nodes = self.network.nodes
            for cell in cells:
                alive = any(
                    nodes[item_id].up for item_id in grid.items_in_cell(cell)
                )
                if alive:
                    self._occupied.add(cell)
                else:
                    self._occupied.discard(cell)
        stale = [
            key
            for key, (_path, path_cells) in self._paths.items()
            # Negative answers (path_cells None) can be overturned by
            # any new link anywhere; positive paths only break when a
            # cell they cross is dirty (each link on the path has both
            # endpoints on it, and a node's changes always dirty the
            # cell it occupied).
            if path_cells is None or not path_cells.isdisjoint(cells)
        ]
        for key in stale:
            del self._paths[key]

    def _occupied_cells(self) -> Set[Cell]:
        if self._occupied is None:
            grid = self.network.grid
            occupied: Set[Cell] = set()
            for node in self.network.nodes.values():
                if node.up:
                    occupied.add(grid.cell_of(grid.position_of(node.id)))
            self._occupied = occupied
        return self._occupied

    # -- planning ------------------------------------------------------------

    def _straight_corridor(self, start: Cell, goal: Cell) -> FrozenSet[Cell]:
        """The straight cell walk start→goal, dilated by one ring."""
        walk = [start]
        cx, cy = start
        gx, gy = goal
        while (cx, cy) != (gx, gy):
            cx += (gx > cx) - (gx < cx)
            cy += (gy > cy) - (gy < cy)
            walk.append((cx, cy))
        return self._dilate(walk)

    @staticmethod
    def _dilate(cells) -> FrozenSet[Cell]:
        return frozenset(
            (cx + dx, cy + dy)
            for cx, cy in cells
            for dx in (-1, 0, 1)
            for dy in (-1, 0, 1)
        )

    def _greedy_corridor(
        self,
        source_id: str,
        target_id: str,
        corridor: FrozenSet[Cell],
        goal_cell: Cell,
        hop_limit: int,
    ) -> Optional[List[str]]:
        """Gateway walk: hop neighbour-to-neighbour inside ``corridor``,
        always trying the neighbour closest to the target first (fewest
        cells to go, then metres, then id — fully deterministic) and
        backtracking out of dead ends.  Visited nodes stay burned, so
        the walk is best-first DFS: O(path length x degree) on open
        ground, degrading gracefully around obstacles instead of paying
        the corridor BFS's O(corridor area).  Returns None when the
        corridor is exhausted or every route exceeds ``hop_limit``
        (which enforces the stretch bound by construction); the caller
        then falls through to the exhaustive rungs.
        """
        network = self.network
        grid = network.grid
        nodes = network.nodes
        goal_position = grid.position_of(target_id)

        def children_of(node_id):
            """(target is adjacent?, unvisited candidates; stack order —
            pop() yields the most promising first)."""
            ranked = []
            for peer in network.neighbors(nodes[node_id]):
                peer_id = peer.id
                if peer_id == target_id:
                    return True, []
                if peer_id in seen:
                    continue
                position = grid.position_of(peer_id)
                cell = grid.cell_of(position)
                if cell not in corridor:
                    continue
                ranked.append(
                    (
                        max(
                            abs(cell[0] - goal_cell[0]),
                            abs(cell[1] - goal_cell[1]),
                        ),
                        position.distance_to(goal_position),
                        peer_id,
                    )
                )
            ranked.sort(reverse=True)
            return False, [peer_id for _, _, peer_id in ranked]

        seen = {source_id}
        path = [source_id]
        adjacent, candidates = children_of(source_id)
        if adjacent:
            return [source_id, target_id]
        stack = [candidates]
        while stack:
            if not stack[-1] or len(path) >= hop_limit:
                # Dead end, or no budget left for "one more hop plus
                # the closing hop": backtrack.
                stack.pop()
                path.pop()
                continue
            node_id = stack[-1].pop()
            if node_id in seen:
                # Reached first through a different branch meanwhile.
                continue
            seen.add(node_id)
            path.append(node_id)
            adjacent, candidates = children_of(node_id)
            if adjacent:
                path.append(target_id)
                return path
            stack.append(candidates)
        return None

    def _restricted_bfs(
        self, source_id: str, target_id: str, corridor: FrozenSet[Cell]
    ) -> Optional[List[str]]:
        """Node-level BFS visiting only nodes inside ``corridor``."""
        network = self.network
        grid = network.grid
        nodes = network.nodes
        previous: Dict[str, str] = {}
        seen = {source_id}
        frontier = [source_id]
        while frontier:
            next_frontier: List[str] = []
            for current in frontier:
                neighbors = sorted(
                    peer.id for peer in network.neighbors(nodes[current])
                )
                for neighbor in neighbors:
                    if neighbor in seen:
                        continue
                    if grid.cell_of(grid.position_of(neighbor)) not in corridor:
                        continue
                    seen.add(neighbor)
                    previous[neighbor] = current
                    if neighbor == target_id:
                        return walk_tree(previous, source_id, target_id)
                    next_frontier.append(neighbor)
            frontier = next_frontier
        return None

    def _cell_path(self, start: Cell, goal: Cell) -> Optional[List[Cell]]:
        """BFS over occupied cells (8-connected); None = no cell path,
        which is an exact proof of node-level unreachability."""
        occupied = self._occupied_cells()
        if start not in occupied or goal not in occupied:
            return None
        if start == goal:
            return [start]
        previous: Dict[Cell, Cell] = {}
        seen = {start}
        frontier = [start]
        while frontier:
            next_frontier: List[Cell] = []
            for cell in frontier:
                cx, cy = cell
                for dx, dy in _RING:
                    step = (cx + dx, cy + dy)
                    if step in seen or step not in occupied:
                        continue
                    seen.add(step)
                    previous[step] = cell
                    if step == goal:
                        walk = [goal]
                        while walk[-1] != start:
                            walk.append(previous[walk[-1]])
                        walk.reverse()
                        return walk
                    next_frontier.append(step)
            frontier = next_frontier
        return None

    def _within_stretch(self, path: List[str], cell_distance: int) -> bool:
        return len(path) - 1 <= self.stretch * max(cell_distance, 1) + 2

    def path(self, source_id: str, target_id: str) -> Optional[List[str]]:
        """A path within the stretch bound, or None iff flat BFS would
        also find none."""
        network = self.network
        if source_id == target_id:
            return [source_id]
        if len(network) < self.flat_threshold or not self.adhoc_only:
            self._count("flat", node=source_id)
            return self.table.path(source_id, target_id)
        source = network.nodes.get(source_id)
        target = network.nodes.get(target_id)
        if source is None or target is None or not (source.up and target.up):
            # Flat BFS answers None for unknown/down endpoints; match it.
            return None
        self._sync()
        cached = self._paths.get((source_id, target_id))
        if cached is not None:
            self._count("hits", node=source_id)
            path, _cells = cached
            return list(path) if path is not None else None
        self._count("misses", node=source_id)
        grid = network.grid
        s_cell = grid.cell_of(grid.position_of(source_id))
        t_cell = grid.cell_of(grid.position_of(target_id))
        cell_distance = max(
            abs(s_cell[0] - t_cell[0]), abs(s_cell[1] - t_cell[1])
        )
        corridor = self._straight_corridor(s_cell, t_cell)
        path = self._greedy_corridor(
            source_id,
            target_id,
            corridor,
            t_cell,
            self.stretch * max(cell_distance, 1) + 2,
        )
        if path is not None:
            # The hop limit IS the stretch bound, so no re-check needed.
            self._count("greedy", node=source_id)
            return self._remember(source_id, target_id, path)
        path = self._restricted_bfs(source_id, target_id, corridor)
        if path is not None and self._within_stretch(path, cell_distance):
            self._count("corridor", node=source_id)
            return self._remember(source_id, target_id, path)
        cell_path = self._cell_path(s_cell, t_cell)
        if cell_path is None:
            # Exact: every node path induces an occupied-cell path.
            self._count("cell_unreachable", node=source_id)
            return self._remember(source_id, target_id, None)
        if len(cell_path) > 1:
            detour = self._restricted_bfs(
                source_id, target_id, self._dilate(cell_path)
            )
            if detour is not None and self._within_stretch(
                detour, cell_distance
            ):
                self._count("cell_corridor", node=source_id)
                return self._remember(source_id, target_id, detour)
        # Sparse/maze-like world: pay one flat BFS, get the exact answer
        # (and the optimal path, so the stretch bound holds trivially).
        self._count("flat_fallback", node=source_id)
        path = self.table.path(source_id, target_id)
        return self._remember(source_id, target_id, path)

    def _remember(
        self, source_id: str, target_id: str, path: Optional[List[str]]
    ) -> Optional[List[str]]:
        if path is None:
            self._paths[(source_id, target_id)] = (None, None)
            return None
        grid = self.network.grid
        cells = frozenset(
            grid.cell_of(grid.position_of(node_id)) for node_id in path
        )
        self._paths[(source_id, target_id)] = (tuple(path), cells)
        return path

    def next_hop(self, source_id: str, target_id: str) -> Optional[str]:
        """The first relay on the planned path, or None when unreachable."""
        path = self.path(source_id, target_id)
        if path is None or len(path) < 2:
            return None
        return path[1]


class Router:
    """Hop-by-hop forwarding built on :class:`Transport`."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        transport: Transport,
        adhoc_only: bool = True,
        max_hops: int = 32,
        table=None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.env = env
        self.network = network
        self.transport = transport
        self.adhoc_only = adhoc_only
        self.max_hops = max_hops
        #: Any planner with ``path(source_id, target_id)`` works —
        #: pass a :class:`HierarchicalRouter` for city-scale worlds.
        self.table = (
            table
            if table is not None
            else RoutingTable(network, adhoc_only=adhoc_only, metrics=metrics)
        )

    def send_multihop(self, message: Message) -> Process:
        """Relay ``message`` towards its destination; resolves to the hop
        count on success, and fails with :class:`Unreachable` when no
        path exists (checked before every hop)."""
        return self.env.process(
            self._relay(message), name=f"route#{message.id}"
        )

    def _relay(self, message: Message) -> Generator:
        current = message.source
        hops = 0
        if message.created_at == 0.0:
            message.created_at = self.env.now
        while current != message.destination:
            if hops >= self.max_hops:
                raise Unreachable(
                    f"gave up after {hops} hops towards {message.destination}"
                )
            path = self.table.path(current, message.destination)
            if path is None or len(path) < 2:
                raise Unreachable(
                    f"no path from {current} to {message.destination}"
                )
            next_hop = path[1]
            leg = Message(
                source=current,
                destination=next_hop,
                kind="net.relay",
                payload=message,
                size_bytes=message.size_bytes,
                created_at=message.created_at,
            )
            yield self.transport.send_reliable(leg)
            hops += 1
            current = next_hop
            # The leg sits in the hop's inbox; reclaim it so dispatch loops
            # never see relay plumbing.
            hop_node = self.network.node(current)
            removal = hop_node.inbox.get(
                predicate=lambda m, leg_id=leg.id: m.id == leg_id
            )
            if removal.triggered:
                yield removal
            else:
                # A dispatcher consumed it first; it is expected to ignore
                # the reserved "net.relay" kind.
                removal.cancel()
        message.hops = hops
        message.via = "multihop"
        destination_node = self.network.node(message.destination)
        yield destination_node.inbox.put(message)
        return hops
