"""Message transport: timing, loss, cost, and delivery.

``send`` models one unacknowledged transfer: pick a link under the
policy, hold the sender's radio for the transmission time, then deliver
after the propagation latency unless the link broke mid-transfer or the
loss draw failed.  ``send_reliable`` adds ARQ-style retransmission with
a bounded number of attempts.  ``broadcast`` models a single ad-hoc
radio transmission heard by every in-range neighbour.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from ..errors import MessageTooLarge, NetworkError, TransportTimeout, Unreachable
from ..obs import NOOP_SPAN, SpanTracer
from ..sim import Environment, MetricsRegistry, Process, RandomStreams, TraceLog
from .message import Message
from .network import Link, LinkPolicy, Network, prefer_free_then_fast
from .node import NetworkNode
from .technologies import LinkTechnology

#: Modelled size of a link-layer acknowledgement, billed per reliable attempt.
ACK_BYTES = 32


class Transport:
    """Moves :class:`Message` objects between nodes of one network."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        streams: RandomStreams,
        trace: Optional[TraceLog] = None,
        metrics: Optional[MetricsRegistry] = None,
        policy: LinkPolicy = prefer_free_then_fast,
        tracer: Optional[SpanTracer] = None,
    ) -> None:
        self.env = env
        self.network = network
        self.trace = trace if trace is not None else TraceLog(enabled=False)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = (
            tracer
            if tracer is not None
            else SpanTracer(now=lambda: env.now, enabled=False)
        )
        self.policy = policy
        self._rng = streams.stream("transport.loss")
        #: Optional message-fault hook (see :mod:`repro.faults`): when
        #: attached it may force extra loss before the delivery
        #: decision and reshape deliveries (delay/duplicate/corrupt)
        #: after it.  ``None`` keeps the pre-fault behaviour and RNG
        #: draw order bit-identical.
        self.faults: Optional[object] = None
        #: (family, node id) -> labeled child; transports touch many
        #: nodes, so the per-site attribute caching hosts use is
        #: replaced by one shared lookup table.
        self._label_cache: dict = {}

    def _node_counter(self, name: str, node_id: str):
        key = (name, node_id)
        counter = self._label_cache.get(key)
        if counter is None:
            counter = self._label_cache[key] = self.metrics.counter(
                name, labels={"node": node_id}
            )
        return counter

    def _node_histogram(self, name: str, node_id: str):
        key = (name, node_id)
        histogram = self._label_cache.get(key)
        if histogram is None:
            histogram = self._label_cache[key] = self.metrics.histogram(
                name, labels={"node": node_id}
            )
        return histogram

    # -- public sends ---------------------------------------------------------

    def send(self, message: Message, policy: Optional[LinkPolicy] = None) -> Process:
        """Start an unacknowledged transfer; the process resolves to True
        (delivered) or False (lost in transit), and fails with
        :class:`Unreachable` when no link exists at send time."""
        return self.env.process(
            self._send(message, policy or self.policy),
            name=f"send#{message.id}",
        )

    def send_reliable(
        self,
        message: Message,
        max_attempts: int = 4,
        policy: Optional[LinkPolicy] = None,
    ) -> Process:
        """Transfer with retransmissions.

        Resolves to the number of attempts used; fails with
        :class:`TransportTimeout` when every attempt was lost, or
        :class:`Unreachable` when no link existed to begin with.
        """
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        return self.env.process(
            self._send_reliable(message, max_attempts, policy or self.policy),
            name=f"send-reliable#{message.id}",
        )

    def broadcast(
        self,
        source: NetworkNode,
        kind: str,
        payload: object = None,
        size_bytes: int = 0,
        technology: Optional[LinkTechnology] = None,
    ) -> Process:
        """One ad-hoc radio transmission heard by all in-range neighbours.

        Resolves to the list of node ids that actually received it.
        """
        return self.env.process(
            self._broadcast(source, kind, payload, size_bytes, technology),
            name=f"broadcast:{kind}",
        )

    # -- internals -------------------------------------------------------------

    def _pick_link(
        self, source: NetworkNode, destination: NetworkNode, policy: LinkPolicy
    ) -> Optional[Link]:
        return self.network.best_link(source, destination, policy=policy)

    def _send(
        self, message: Message, policy: LinkPolicy
    ) -> Generator:
        source = self.network.node(message.source)
        destination = self.network.node(message.destination)
        if not source.up:
            raise NetworkError(f"sender {source.id} is down")
        if message.created_at == 0.0:
            message.created_at = self.env.now
        link = self._pick_link(source, destination, policy)
        if link is None:
            self._node_counter("net.unreachable", source.id).increment()
            self.trace.emit(
                self.env.now, source.id, "net.unreachable", to=destination.id
            )
            raise Unreachable(f"{source.id} cannot reach {destination.id}")
        if message.wire_size > link.sender_technology.max_payload:
            raise MessageTooLarge(
                f"{message.wire_size}B exceeds {link.sender_technology.name} limit"
            )
        delivered = yield from self._transmit(
            message, source, destination, link, attempt=1
        )
        return delivered

    def _transmit(
        self,
        message: Message,
        source: NetworkNode,
        destination: NetworkNode,
        link: Link,
        attempt: int = 1,
    ) -> Generator:
        """Run one transfer attempt over ``link``; returns delivery bool."""
        span = self.tracer.start(
            "net.transmit",
            source.id,
            parent=message.trace_context,
            msg=message.kind,
            msg_id=message.id,
            attempt=attempt,
            to=destination.id,
            bytes=message.wire_size,
            via=link.name,
        )
        # Hop timestamps for the trace analyzer: the span runs
        # enqueue -> on-air -> sent -> delivery decision, and ``t_air``/
        # ``t_sent`` split it into channel-queue, airtime, and transit.
        # Guarded so the disabled-tracing path stamps (and allocates)
        # nothing — NOOP_SPAN's attribute dict is a throwaway.
        stamped = span is not NOOP_SPAN
        interface = source.interface(link.sender_technology.name)
        with interface.channel.request() as claim:
            yield claim
            if stamped:
                span.attributes["t_air"] = self.env.now
            transmit_time = link.transfer_time(message.wire_size)
            yield self.env.timeout(transmit_time)
        if stamped:
            span.attributes["t_sent"] = self.env.now
        # Bill the sender's access technology for the bytes put on air.
        source.costs.account_transfer(
            link.sender_technology, message.wire_size, sent=True
        )
        self._node_counter("net.bytes_sent", source.id).increment(
            message.wire_size
        )
        # Propagation; connectivity may have broken while transmitting.
        yield self.env.timeout(link.latency_s)
        still_connected = (
            self._pick_link(source, destination, prefer_free_then_fast) is not None
        )
        lost = self._rng.random() < link.loss
        reason = "loss" if lost else "disconnected"
        faults = self.faults
        if faults is not None and not lost and faults.drops(message):
            lost = True
            reason = "fault"
        if not destination.up or not still_connected or lost:
            self._node_counter("net.messages_lost", destination.id).increment()
            self.trace.emit(
                self.env.now,
                source.id,
                "net.lost",
                to=destination.id,
                msg=message.kind,
                reason=reason,
            )
            self.tracer.finish(span, status="lost", reason=reason)
            return False
        destination.costs.account_transfer(
            link.receiver_technology, message.wire_size, sent=False
        )
        message.via = link.name
        message.hops += 1
        self._node_counter(
            "net.messages_delivered", destination.id
        ).increment()
        self._node_histogram(
            "net.delivery_latency", destination.id
        ).observe(self.env.now - message.created_at)
        self.trace.emit(
            self.env.now,
            source.id,
            "net.delivered",
            to=destination.id,
            msg=message.kind,
            via=link.name,
            bytes=message.wire_size,
        )
        self.tracer.finish(span)
        if faults is None:
            if stamped:
                message.delivered_at = self.env.now
            yield destination.inbox.put(message)
        else:
            # The hook may delay the copy, add duplicates, or mark the
            # payload corrupted; it owns the inbox put(s) — and the
            # ``delivered_at`` stamps, so injected delays surface as
            # transit stalls in the trace analysis.
            yield from faults.deliver(message, destination)
        return True

    def _send_reliable(
        self, message: Message, max_attempts: int, policy: LinkPolicy
    ) -> Generator:
        source = self.network.node(message.source)
        destination = self.network.node(message.destination)
        if not source.up:
            raise NetworkError(f"sender {source.id} is down")
        if message.created_at == 0.0:
            message.created_at = self.env.now
        for attempt in range(1, max_attempts + 1):
            link = self._pick_link(source, destination, policy)
            if link is None:
                if attempt == 1:
                    self._node_counter(
                        "net.unreachable", source.id
                    ).increment()
                    raise Unreachable(
                        f"{source.id} cannot reach {destination.id}"
                    )
                raise TransportTimeout(
                    f"lost connectivity to {destination.id} after "
                    f"{attempt - 1} attempts"
                )
            if message.wire_size > link.sender_technology.max_payload:
                raise MessageTooLarge(
                    f"{message.wire_size}B exceeds "
                    f"{link.sender_technology.name} limit"
                )
            delivered = yield from self._transmit(
                message, source, destination, link, attempt=attempt
            )
            # The acknowledgement costs airtime and bytes at both ends.
            yield self.env.timeout(link.latency_s)
            if destination.up:
                destination.costs.account_transfer(
                    link.receiver_technology, ACK_BYTES, sent=True
                )
            source.costs.account_transfer(link.sender_technology, ACK_BYTES, sent=False)
            if delivered:
                self._node_histogram(
                    "net.attempts_used", destination.id
                ).observe(float(attempt))
                return attempt
            if attempt < max_attempts:
                self._node_counter(
                    "net.retransmissions", destination.id
                ).increment()
        raise TransportTimeout(
            f"message #{message.id} to {destination.id} lost "
            f"{max_attempts} times"
        )

    def _broadcast(
        self,
        source: NetworkNode,
        kind: str,
        payload: object,
        size_bytes: int,
        technology: Optional[LinkTechnology],
    ) -> Generator:
        if not source.up:
            raise NetworkError(f"sender {source.id} is down")
        span = self.tracer.start(
            "net.broadcast", source.id, msg=kind, bytes=size_bytes
        )
        neighbors = self.network.neighbors(source, technology=technology)
        # The radio transmits once whether or not anyone listens.
        techs: List[LinkTechnology] = []
        if technology is not None:
            techs = [technology]
        else:
            techs = sorted(
                {
                    link.sender_technology
                    for neighbor in neighbors
                    for link in self.network.links_between(source, neighbor)
                    if not link.via_backbone
                },
                key=lambda tech: tech.name,
            )
        if not techs:
            # Nothing in range; still model the transmission on the first
            # usable ad-hoc radio, if any.
            adhoc = [
                iface.technology
                for iface in source.usable_interfaces()
                if iface.technology.is_adhoc
            ]
            techs = adhoc[:1]
        received: List[str] = []
        wire = size_bytes + 64
        for tech in techs:
            interface = source.interface(tech.name)
            with interface.channel.request() as claim:
                yield claim
                yield self.env.timeout(tech.transfer_time(wire))
            source.costs.account_transfer(tech, wire, sent=True)
            yield self.env.timeout(tech.latency_s)
            for neighbor in self.network.neighbors(source, technology=tech):
                if self._rng.random() < tech.loss:
                    continue
                message = Message(
                    source=source.id,
                    destination=neighbor.id,
                    kind=kind,
                    payload=payload,
                    size_bytes=size_bytes,
                    created_at=self.env.now,
                )
                message.via = tech.name
                neighbor.costs.account_transfer(tech, wire, sent=False)
                if self.tracer.enabled:
                    message.delivered_at = self.env.now
                yield neighbor.inbox.put(message)
                received.append(neighbor.id)
        self._node_counter("net.broadcasts", source.id).increment()
        self._node_histogram("net.broadcast_reach", source.id).observe(
            float(len(received))
        )
        self.trace.emit(
            self.env.now,
            source.id,
            "net.broadcast",
            msg=kind,
            heard_by=len(received),
        )
        self.tracer.finish(span, heard_by=len(received))
        return received
