"""Naive reference implementations of the topology queries.

These are the original O(N²)-sweep algorithms :class:`~repro.net.network.Network`
used before topology-epoch caching and the spatial index were added.
They are kept as the *executable specification*: the cached fast paths
must return bit-identical results, which ``tests/property`` asserts
after arbitrary mobility/churn interleavings and
``benchmarks/bench_micro_net.py`` uses as the speedup baseline.

Everything here reads only public node state (positions, interfaces,
``up`` flags), never the network's caches.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from .network import Link, Network, _backbone_link, _direct_link
from .node import Interface, NetworkNode
from .technologies import LinkTechnology


def naive_infra_covered(
    network: Network, node: NetworkNode, interface: Interface
) -> bool:
    """Full-scan backbone coverage check (pre-index semantics)."""
    technology = interface.technology
    if technology.range_m <= 0 or node.fixed:
        return True
    for other in network.nodes.values():
        if other.id == node.id or not other.fixed or not other.up:
            continue
        access_point = other.interfaces.get(technology.name)
        if access_point is None or not access_point.enabled:
            continue
        if node.position.distance_to(other.position) <= technology.range_m:
            return True
    return False


def naive_links_between(
    network: Network, a: NetworkNode, b: NetworkNode
) -> List[Link]:
    """Pairwise link computation without caches or the spatial index."""
    if not (a.up and b.up):
        return []
    links: List[Link] = []
    a_ifaces = a.usable_interfaces()
    b_by_name = {i.technology.name: i for i in b.usable_interfaces()}
    for iface in a_ifaces:
        tech = iface.technology
        peer = b_by_name.get(tech.name)
        if peer is None or not tech.is_adhoc:
            continue
        if a.position.distance_to(b.position) <= tech.range_m:
            links.append(_direct_link(tech))
    a_infra = [
        i
        for i in a_ifaces
        if i.technology.infrastructure and naive_infra_covered(network, a, i)
    ]
    b_infra = [
        i
        for i in b_by_name.values()
        if i.technology.infrastructure and naive_infra_covered(network, b, i)
    ]
    for sender in a_infra:
        for receiver in b_infra:
            links.append(_backbone_link(sender.technology, receiver.technology))
    return links


def naive_neighbors(
    network: Network,
    node: NetworkNode,
    technology: Optional[LinkTechnology] = None,
) -> List[NetworkNode]:
    """Full-scan ad-hoc neighbour enumeration (registry order)."""
    if not node.up:
        return []
    neighbors = []
    for other in network.nodes.values():
        if other.id == node.id or not other.up:
            continue
        for link in naive_links_between(network, node, other):
            if link.via_backbone:
                continue
            if technology is not None and (
                link.sender_technology.name != technology.name
            ):
                continue
            neighbors.append(other)
            break
    return neighbors


def naive_adjacency(
    network: Network, adhoc_only: bool = False
) -> Dict[str, Set[str]]:
    """O(N²) pairwise adjacency snapshot.

    Only *up* nodes appear as keys: a crashed node has no links, so it
    contributes nothing to connectivity and BFS must not see it.
    """
    ids = [node_id for node_id, node in network.nodes.items() if node.up]
    graph: Dict[str, Set[str]] = {node_id: set() for node_id in ids}
    for index, a_id in enumerate(ids):
        for b_id in ids[index + 1 :]:
            links = naive_links_between(
                network, network.nodes[a_id], network.nodes[b_id]
            )
            if adhoc_only:
                links = [link for link in links if not link.via_backbone]
            if links:
                graph[a_id].add(b_id)
                graph[b_id].add(a_id)
    return graph


def naive_reachable_set(
    network: Network, start_id: str, adhoc_only: bool = False
) -> Set[str]:
    """BFS closure over a freshly recomputed adjacency."""
    graph = naive_adjacency(network, adhoc_only=adhoc_only)
    seen = {start_id}
    frontier = [start_id]
    while frontier:
        current = frontier.pop()
        for neighbor in graph.get(current, ()):
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    return seen


def naive_shortest_path(
    network: Network, source_id: str, target_id: str, adhoc_only: bool = False
) -> Optional[List[str]]:
    """Early-exit BFS with sorted tie-breaking over a fresh adjacency."""
    if source_id == target_id:
        return [source_id]
    graph = naive_adjacency(network, adhoc_only=adhoc_only)
    previous: Dict[str, str] = {}
    seen = {source_id}
    frontier = [source_id]
    while frontier:
        next_frontier: List[str] = []
        for current in frontier:
            for neighbor in sorted(graph.get(current, ())):
                if neighbor in seen:
                    continue
                seen.add(neighbor)
                previous[neighbor] = current
                if neighbor == target_id:
                    path = [target_id]
                    while path[-1] != source_id:
                        path.append(previous[path[-1]])
                    path.reverse()
                    return path
                next_frontier.append(neighbor)
        frontier = next_frontier
    return None
