"""Link technology profiles.

Each profile captures the characteristics the paper's trade-offs hinge
on: raw bandwidth, latency, loss, radio range (for ad-hoc technologies),
whether the technology reaches the fixed backbone, and what it costs —
per megabyte (packet-switched tariffs such as GPRS) and per minute
(circuit-switched tariffs such as GSM dial-up).

The numeric values are period-correct for 2002-era hardware; they are
calibration constants, not magic — experiments sweep around them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

MB = 1_000_000  # bytes per megabyte, decimal, as tariffs were quoted


@dataclass(frozen=True)
class LinkTechnology:
    """Static characteristics of one networking technology."""

    name: str
    bandwidth_bps: float  #: usable bit rate
    latency_s: float  #: one-way propagation + processing delay
    loss: float  #: probability an unacknowledged transfer is lost
    range_m: float  #: radio range; 0 for wired
    infrastructure: bool  #: True if it attaches to the fixed backbone
    cost_per_mb: float  #: monetary units per megabyte transferred
    cost_per_minute: float  #: monetary units per minute attached
    setup_s: float  #: connection establishment time (dial-up, pairing)
    max_payload: int = 64 * 1024 * 1024  #: refuse transfers above this

    def transfer_time(self, size_bytes: int) -> float:
        """Seconds of transmission time for ``size_bytes`` (no latency)."""
        return size_bytes * 8.0 / self.bandwidth_bps

    def transfer_cost(self, size_bytes: int) -> float:
        """Monetary cost of moving ``size_bytes`` under the per-MB tariff."""
        return size_bytes / MB * self.cost_per_mb

    @property
    def is_adhoc(self) -> bool:
        """True when peers talk directly, without the backbone."""
        return not self.infrastructure

    def __str__(self) -> str:
        return self.name


#: IEEE 802.11b in ad-hoc (IBSS) mode: fast, free, ~100 m outdoors.
WIFI_ADHOC = LinkTechnology(
    name="802.11b-adhoc",
    bandwidth_bps=5_000_000,  # ~5 Mbps goodput of an 11 Mbps channel
    latency_s=0.005,
    loss=0.02,
    range_m=100.0,
    infrastructure=False,
    cost_per_mb=0.0,
    cost_per_minute=0.0,
    setup_s=0.1,
)

#: Bluetooth 1.1 piconet: slow, free, ~10 m.
BLUETOOTH = LinkTechnology(
    name="bluetooth",
    bandwidth_bps=721_000,
    latency_s=0.03,
    loss=0.03,
    range_m=10.0,
    infrastructure=False,
    cost_per_mb=0.0,
    cost_per_minute=0.0,
    setup_s=1.0,
)

#: GPRS: always-on cellular data, slow, paid per megabyte.
GPRS = LinkTechnology(
    name="gprs",
    bandwidth_bps=40_000,
    latency_s=0.6,
    loss=0.01,
    range_m=0.0,  # coverage assumed ubiquitous
    infrastructure=True,
    cost_per_mb=6.0,
    cost_per_minute=0.0,
    setup_s=0.5,
)

#: GSM circuit-switched dial-up: very slow, paid per minute, slow setup.
DIALUP = LinkTechnology(
    name="gsm-dialup",
    bandwidth_bps=9_600,
    latency_s=0.5,
    loss=0.01,
    range_m=0.0,
    infrastructure=True,
    cost_per_mb=0.0,
    cost_per_minute=0.3,
    setup_s=20.0,
)

#: 802.11b through an access point (hotspot): fast, free, reaches backbone.
WIFI_INFRA = LinkTechnology(
    name="802.11b-infra",
    bandwidth_bps=5_000_000,
    latency_s=0.005,
    loss=0.02,
    range_m=100.0,
    infrastructure=True,
    cost_per_mb=0.0,
    cost_per_minute=0.0,
    setup_s=0.5,
)

#: Wired fast Ethernet for fixed hosts.
LAN = LinkTechnology(
    name="lan",
    bandwidth_bps=100_000_000,
    latency_s=0.001,
    loss=0.0,
    range_m=0.0,
    infrastructure=True,
    cost_per_mb=0.0,
    cost_per_minute=0.0,
    setup_s=0.0,
)

#: One-way latency added when a path crosses the fixed backbone.
BACKBONE_LATENCY_S = 0.02

TECHNOLOGIES: Dict[str, LinkTechnology] = {
    tech.name: tech
    for tech in (WIFI_ADHOC, BLUETOOTH, GPRS, DIALUP, WIFI_INFRA, LAN)
}


def technology(name: str) -> LinkTechnology:
    """Look up a built-in technology profile by name."""
    try:
        return TECHNOLOGIES[name]
    except KeyError:
        raise KeyError(
            f"unknown technology {name!r}; known: {sorted(TECHNOLOGIES)}"
        ) from None
