"""Mobility models driving node positions.

Each model is a kernel process that updates node positions in small time
steps; connectivity queries pick the movement up immediately.  Models
draw from named RNG streams, so a seeded run replays identically.
"""

from __future__ import annotations

from typing import Dict, Generator, Iterable, List, Sequence, Tuple

from ..sim import Environment, Process, RandomStreams
from .geometry import Area, Position
from .node import NetworkNode


class RandomWaypoint:
    """The classic random-waypoint model.

    Each node repeatedly: picks a uniform destination in ``area``, walks
    there at a uniform-random speed from ``speed_range`` (m/s), then
    pauses for a uniform-random time from ``pause_range`` (s).
    """

    def __init__(
        self,
        env: Environment,
        nodes: Iterable[NetworkNode],
        area: Area,
        streams: RandomStreams,
        speed_range: Tuple[float, float] = (0.5, 2.0),
        pause_range: Tuple[float, float] = (0.0, 10.0),
        tick: float = 1.0,
    ) -> None:
        if speed_range[0] <= 0:
            raise ValueError("minimum speed must be positive")
        if tick <= 0:
            raise ValueError("tick must be positive")
        self.env = env
        self.area = area
        self.speed_range = speed_range
        self.pause_range = pause_range
        self.tick = tick
        self.processes: List[Process] = []
        for node in nodes:
            rng = streams.stream(f"mobility.{node.id}")
            if not area.contains(node.position):
                node.move_to(area.clamp(node.position))
            self.processes.append(
                env.process(self._walk(node, rng), name=f"rwp:{node.id}")
            )

    def _walk(self, node: NetworkNode, rng) -> Generator:
        while True:
            destination = self.area.random_position(rng)
            speed = rng.uniform(*self.speed_range)
            step = speed * self.tick
            while node.position != destination:
                yield self.env.timeout(self.tick)
                node.move_to(node.position.towards(destination, step))
            pause = rng.uniform(*self.pause_range)
            if pause > 0:
                yield self.env.timeout(pause)


class PathMobility:
    """Trace-driven movement along explicit timed waypoints.

    ``waypoints`` maps node id to a sequence of ``(time, Position)``
    pairs; the node teleport-steps to each position at its time (linear
    interpolation between waypoints at ``tick`` resolution).
    """

    def __init__(
        self,
        env: Environment,
        nodes: Dict[str, NetworkNode],
        waypoints: Dict[str, Sequence[Tuple[float, Position]]],
        tick: float = 1.0,
    ) -> None:
        if tick <= 0:
            raise ValueError("tick must be positive")
        self.env = env
        self.tick = tick
        self.processes: List[Process] = []
        for node_id, points in waypoints.items():
            node = nodes[node_id]
            ordered = sorted(points, key=lambda pair: pair[0])
            self.processes.append(
                env.process(self._follow(node, ordered), name=f"path:{node_id}")
            )

    def _follow(
        self, node: NetworkNode, points: Sequence[Tuple[float, Position]]
    ) -> Generator:
        for target_time, target_position in points:
            while self.env.now < target_time:
                remaining = target_time - self.env.now
                step = min(self.tick, remaining)
                yield self.env.timeout(step)
                time_left = target_time - self.env.now
                if time_left <= 0:
                    node.move_to(target_position)
                else:
                    distance = node.position.distance_to(target_position)
                    speed = distance / (time_left + step)
                    node.move_to(
                        node.position.towards(target_position, speed * step)
                    )
            node.move_to(target_position)


def grid_positions(count: int, area: Area, margin: float = 0.0) -> List[Position]:
    """Evenly spaced positions covering ``area`` for ``count`` nodes.

    Deterministic placement for experiments that must not depend on a
    placement RNG (e.g. density sweeps).
    """
    if count <= 0:
        return []
    columns = int(count**0.5)
    if columns * columns < count:
        columns += 1
    rows = (count + columns - 1) // columns
    usable_w = area.width - 2 * margin
    usable_h = area.height - 2 * margin
    positions = []
    for index in range(count):
        row, column = divmod(index, columns)
        x = margin + (column + 0.5) * usable_w / columns
        y = margin + (row + 0.5) * usable_h / rows
        positions.append(Position(x, y))
    return positions
