"""Per-node traffic and monetary cost accounting.

The paper's m-commerce argument is about *money*: wireless transfers are
metered per megabyte (GPRS) or per connected minute (dial-up).  Every
node carries a :class:`CostMeter` that the transport and interfaces feed;
experiments read totals from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .technologies import LinkTechnology


@dataclass
class CostMeter:
    """Accumulated traffic and money per technology for one node."""

    bytes_sent: Dict[str, int] = field(default_factory=dict)
    bytes_received: Dict[str, int] = field(default_factory=dict)
    connected_seconds: Dict[str, float] = field(default_factory=dict)
    money: float = 0.0

    def account_transfer(
        self, technology: LinkTechnology, size_bytes: int, sent: bool
    ) -> float:
        """Record a transfer and return the monetary charge applied."""
        book = self.bytes_sent if sent else self.bytes_received
        book[technology.name] = book.get(technology.name, 0) + size_bytes
        charge = technology.transfer_cost(size_bytes)
        self.money += charge
        return charge

    def account_connection_time(
        self, technology: LinkTechnology, seconds: float
    ) -> float:
        """Record attached airtime and return the monetary charge applied."""
        if seconds < 0:
            raise ValueError(f"negative connection time {seconds}")
        self.connected_seconds[technology.name] = (
            self.connected_seconds.get(technology.name, 0.0) + seconds
        )
        charge = seconds / 60.0 * technology.cost_per_minute
        self.money += charge
        return charge

    @property
    def total_bytes_sent(self) -> int:
        return sum(self.bytes_sent.values())

    @property
    def total_bytes_received(self) -> int:
        return sum(self.bytes_received.values())

    @property
    def total_bytes(self) -> int:
        return self.total_bytes_sent + self.total_bytes_received

    def wireless_bytes(self) -> int:
        """Bytes moved over non-LAN technologies (the device's radio)."""
        return sum(
            count
            for book in (self.bytes_sent, self.bytes_received)
            for name, count in book.items()
            if name != "lan"
        )

    def merge(self, other: "CostMeter") -> None:
        """Fold another meter's totals into this one (fleet aggregation)."""
        for name, count in other.bytes_sent.items():
            self.bytes_sent[name] = self.bytes_sent.get(name, 0) + count
        for name, count in other.bytes_received.items():
            self.bytes_received[name] = self.bytes_received.get(name, 0) + count
        for name, seconds in other.connected_seconds.items():
            self.connected_seconds[name] = (
                self.connected_seconds.get(name, 0.0) + seconds
            )
        self.money += other.money
