"""2-D geometry for node placement and radio range."""

from __future__ import annotations

import math
import random
from dataclasses import dataclass


@dataclass(frozen=True)
class Position:
    """A point in the simulation plane, in metres."""

    x: float
    y: float

    def distance_to(self, other: "Position") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)

    def towards(self, target: "Position", step: float) -> "Position":
        """The point ``step`` metres from here towards ``target``.

        Never overshoots: if ``target`` is closer than ``step``, returns
        ``target`` itself.
        """
        gap = self.distance_to(target)
        if gap <= step or gap == 0.0:
            return target
        fraction = step / gap
        return Position(
            self.x + (target.x - self.x) * fraction,
            self.y + (target.y - self.y) * fraction,
        )

    def __repr__(self) -> str:
        return f"({self.x:.1f}, {self.y:.1f})"


@dataclass(frozen=True)
class Area:
    """An axis-aligned rectangle [0, width] x [0, height], in metres."""

    width: float
    height: float

    def contains(self, position: Position) -> bool:
        return 0.0 <= position.x <= self.width and 0.0 <= position.y <= self.height

    def random_position(self, rng: random.Random) -> Position:
        return Position(rng.uniform(0.0, self.width), rng.uniform(0.0, self.height))

    def clamp(self, position: Position) -> Position:
        return Position(
            min(max(position.x, 0.0), self.width),
            min(max(position.y, 0.0), self.height),
        )
