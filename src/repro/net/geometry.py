"""2-D geometry for node placement, radio range, and spatial indexing."""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class Position:
    """A point in the simulation plane, in metres."""

    x: float
    y: float

    def distance_to(self, other: "Position") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)

    def towards(self, target: "Position", step: float) -> "Position":
        """The point ``step`` metres from here towards ``target``.

        Never overshoots: if ``target`` is closer than ``step``, returns
        ``target`` itself.
        """
        gap = self.distance_to(target)
        if gap <= step or gap == 0.0:
            return target
        fraction = step / gap
        return Position(
            self.x + (target.x - self.x) * fraction,
            self.y + (target.y - self.y) * fraction,
        )

    def __repr__(self) -> str:
        return f"({self.x:.1f}, {self.y:.1f})"


@dataclass(frozen=True)
class Area:
    """An axis-aligned rectangle [0, width] x [0, height], in metres."""

    width: float
    height: float

    def contains(self, position: Position) -> bool:
        return 0.0 <= position.x <= self.width and 0.0 <= position.y <= self.height

    def random_position(self, rng: random.Random) -> Position:
        return Position(rng.uniform(0.0, self.width), rng.uniform(0.0, self.height))

    def clamp(self, position: Position) -> Position:
        return Position(
            min(max(position.x, 0.0), self.width),
            min(max(position.y, 0.0), self.height),
        )


class SpatialGrid:
    """A spatial hash over point items for O(1)-amortised range queries.

    Items (keyed by an opaque string id) live in square cells of
    ``cell_size`` metres; :meth:`near` inspects only the cells a query
    circle overlaps, so a query costs O(items in nearby cells) instead
    of O(all items).  Cell size should match the dominant query radius
    (the longest radio range): larger cells degrade towards a full
    scan, smaller cells multiply the number of cells visited per query.
    """

    def __init__(self, cell_size: float = 100.0) -> None:
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.cell_size = cell_size
        self._cells: Dict[Tuple[int, int], Dict[str, Position]] = {}
        self._positions: Dict[str, Position] = {}

    def __len__(self) -> int:
        return len(self._positions)

    def __contains__(self, item_id: str) -> bool:
        return item_id in self._positions

    def cell_of(self, position: Position) -> Tuple[int, int]:
        """The (cx, cy) cell coordinates covering ``position``.

        Cell coordinates are only meaningful for one ``cell_size``;
        :meth:`rebuild` renumbers every cell, so consumers caching
        per-cell data must key on the size (or watch it) too.
        """
        size = self.cell_size
        return (int(math.floor(position.x / size)), int(math.floor(position.y / size)))

    # Kept as the internal spelling used before the cell API went public.
    _cell_of = cell_of

    def position_of(self, item_id: str) -> Position:
        """Current indexed position of ``item_id`` (KeyError if absent)."""
        return self._positions[item_id]

    def items_in_cell(self, cell: Tuple[int, int]) -> Tuple[str, ...]:
        """Ids bucketed in ``cell``, in insertion order (empty if none)."""
        bucket = self._cells.get(cell)
        if not bucket:
            return ()
        return tuple(bucket)

    def insert(self, item_id: str, position: Position) -> None:
        if item_id in self._positions:
            self.move(item_id, position)
            return
        self._positions[item_id] = position
        self._cells.setdefault(self._cell_of(position), {})[item_id] = position

    def move(self, item_id: str, position: Position) -> None:
        old = self._positions.get(item_id)
        if old is None:
            self.insert(item_id, position)
            return
        old_cell = self._cell_of(old)
        new_cell = self._cell_of(position)
        self._positions[item_id] = position
        if old_cell == new_cell:
            self._cells[old_cell][item_id] = position
            return
        bucket = self._cells[old_cell]
        del bucket[item_id]
        if not bucket:
            del self._cells[old_cell]
        self._cells.setdefault(new_cell, {})[item_id] = position

    def remove(self, item_id: str) -> None:
        position = self._positions.pop(item_id, None)
        if position is None:
            return
        cell = self._cell_of(position)
        bucket = self._cells[cell]
        del bucket[item_id]
        if not bucket:
            del self._cells[cell]

    def rebuild(self, cell_size: float) -> None:
        """Re-bucket every item under a new cell size (rare; used when a
        longer-range technology first appears)."""
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        items = list(self._positions.items())
        self.cell_size = cell_size
        self._cells = {}
        for item_id, position in items:
            self._cells.setdefault(self._cell_of(position), {})[item_id] = position

    def near(self, position: Position, radius: float) -> List[str]:
        """Ids of all items within ``radius`` metres of ``position``.

        Exact (distance-filtered), in no particular order; callers
        needing determinism must impose their own ordering.
        """
        if radius < 0:
            return []
        size = self.cell_size
        min_cx = int(math.floor((position.x - radius) / size))
        max_cx = int(math.floor((position.x + radius) / size))
        min_cy = int(math.floor((position.y - radius) / size))
        max_cy = int(math.floor((position.y + radius) / size))
        cells = self._cells
        px, py = position.x, position.y
        found: List[str] = []
        for cx in range(min_cx, max_cx + 1):
            for cy in range(min_cy, max_cy + 1):
                bucket = cells.get((cx, cy))
                if not bucket:
                    continue
                for item_id, item_position in bucket.items():
                    if math.hypot(item_position.x - px, item_position.y - py) <= radius:
                        found.append(item_id)
        return found
