"""Network substrate: technologies, nodes, connectivity, transport.

The substrate models the networking landscape the paper targets:
nomadic dial-up, always-on cellular (GPRS), ad-hoc piconets (Bluetooth,
802.11b IBSS), hotspot Wi-Fi, and the wired backbone — with bandwidth,
latency, loss, radio range, *and tariffs*, because the paper's
m-commerce arguments are about money as much as time.
"""

from .cost import CostMeter
from .geometry import Area, Position, SpatialGrid
from .message import HEADER_BYTES, Message
from .mobility import PathMobility, RandomWaypoint, grid_positions
from .monitor import ConnectivityMonitor
from .network import (
    AdjacencyView,
    Link,
    Network,
    PhysicalNetwork,
    prefer_fast,
    prefer_free_then_fast,
)
from .node import Interface, NetworkNode
from .routing import HierarchicalRouter, Router, RoutingTable
from .technologies import (
    BACKBONE_LATENCY_S,
    BLUETOOTH,
    DIALUP,
    GPRS,
    LAN,
    TECHNOLOGIES,
    WIFI_ADHOC,
    WIFI_INFRA,
    LinkTechnology,
    technology,
)
from .traceio import (
    ConnectivityRecorder,
    dump_mobility,
    load_mobility,
    replay_mobility,
)
from .transport import ACK_BYTES, Transport

__all__ = [
    "ACK_BYTES",
    "AdjacencyView",
    "Area",
    "BACKBONE_LATENCY_S",
    "BLUETOOTH",
    "ConnectivityMonitor",
    "ConnectivityRecorder",
    "CostMeter",
    "DIALUP",
    "GPRS",
    "HEADER_BYTES",
    "HierarchicalRouter",
    "Interface",
    "LAN",
    "Link",
    "LinkTechnology",
    "Message",
    "Network",
    "NetworkNode",
    "PathMobility",
    "PhysicalNetwork",
    "Position",
    "RandomWaypoint",
    "Router",
    "RoutingTable",
    "SpatialGrid",
    "TECHNOLOGIES",
    "Transport",
    "WIFI_ADHOC",
    "WIFI_INFRA",
    "dump_mobility",
    "grid_positions",
    "load_mobility",
    "prefer_fast",
    "replay_mobility",
    "prefer_free_then_fast",
    "technology",
]
