"""Connectivity monitoring: who is in range, and link up/down events.

The middleware's context-awareness and the Lime-style tuple-space
engagement both need to know when peers appear and disappear.  The
monitor polls the neighbour set at a fixed beacon interval (modelling
periodic hello beacons) and notifies listeners of the difference.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional, Set

from ..sim import Environment, MetricsRegistry, TraceLog
from .network import Network
from .node import NetworkNode
from .technologies import LinkTechnology

#: Called with (peer_id, appeared: bool) on every neighbour-set change.
NeighborListener = Callable[[str, bool], None]


class ConnectivityMonitor:
    """Periodic neighbour scanning for one node."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        node: NetworkNode,
        interval: float = 1.0,
        technology: Optional[LinkTechnology] = None,
        metrics: Optional[MetricsRegistry] = None,
        trace: Optional[TraceLog] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.env = env
        self.network = network
        self.node = node
        self.interval = interval
        self.technology = technology
        self.metrics = metrics
        self.trace = trace
        self.current: Set[str] = set()
        #: Topology epoch at the last scan; an unchanged epoch proves the
        #: neighbour set cannot have changed, so the diff is skipped.
        self._scanned_epoch: Optional[int] = None
        self._listeners: List[NeighborListener] = []
        self._process = env.process(self._scan_loop(), name=f"monitor:{node.id}")

    def subscribe(self, listener: NeighborListener) -> None:
        """Register for (peer_id, appeared) callbacks."""
        self._listeners.append(listener)

    def unsubscribe(self, listener: NeighborListener) -> None:
        self._listeners.remove(listener)

    def scan_now(self) -> Set[str]:
        """Force an immediate scan; returns the current neighbour set."""
        self._rescan()
        return set(self.current)

    def _rescan(self) -> None:
        epoch = self.network.topology_epoch
        if epoch == self._scanned_epoch:
            # Nothing moved, toggled, or churned since the last beacon:
            # the cached range query would return the same set, so only
            # refresh the density gauge and skip the set diff.
            if self.metrics is not None:
                self.metrics.gauge("monitor.neighbors").set(
                    float(len(self.current))
                )
            return
        if self._scanned_epoch is not None:
            # The epoch moved, but maybe nowhere near us: if no change
            # since our last scan touched a cell within one ring of our
            # cell, no link of ours can have changed (cell size covers
            # every radio range, and movers dirty both old and new
            # cells), so the neighbour set is provably identical.
            ring = self.network._dirty_ring(self._scanned_epoch)
            if ring is not None and (
                self.network.grid.cell_of(self.node.position) not in ring
            ):
                self._scanned_epoch = epoch
                if self.metrics is not None:
                    self.metrics.counter("monitor.scans_elided").increment()
                    self.metrics.gauge("monitor.neighbors").set(
                        float(len(self.current))
                    )
                return
        self._scanned_epoch = epoch
        fresh = {
            neighbor.id
            for neighbor in self.network.neighbors(
                self.node, technology=self.technology
            )
        }
        appeared = fresh - self.current
        disappeared = self.current - fresh
        self.current = fresh
        if self.metrics is not None:
            # Fleet-wide churn counters + a neighbour-count gauge whose
            # min/max bracket the density the run actually saw.
            if appeared:
                self.metrics.counter("monitor.appearances").increment(
                    len(appeared)
                )
            if disappeared:
                self.metrics.counter("monitor.disappearances").increment(
                    len(disappeared)
                )
            self.metrics.gauge("monitor.neighbors").set(float(len(fresh)))
        if self.trace is not None and (appeared or disappeared):
            self.trace.emit(
                self.env.now,
                self.node.id,
                "monitor.churn",
                appeared=sorted(appeared),
                disappeared=sorted(disappeared),
                neighbors=len(fresh),
            )
        for peer_id in sorted(appeared):
            self._notify(peer_id, True)
        for peer_id in sorted(disappeared):
            self._notify(peer_id, False)

    def _notify(self, peer_id: str, appeared: bool) -> None:
        for listener in list(self._listeners):
            listener(peer_id, appeared)

    def _scan_loop(self) -> Generator:
        while True:
            if self.node.up:
                self._rescan()
            yield self.env.timeout(self.interval)
