"""Wire-size estimation for modelled transfers.

The simulator never really serialises objects; it needs a *size model*
so transfers cost realistic time and money.  ``estimate_size`` walks
plain Python data and sums a conventional encoding size; objects that
know better expose ``size_bytes`` (messages, units, capsules all do).
"""

from __future__ import annotations

from typing import Mapping, Sequence

#: Fixed per-object envelope: type tag + length field.
_OBJECT_OVERHEAD = 8
#: Encoded size of a number (int/float/bool) in a conventional encoding.
_NUMBER_BYTES = 8
#: Fallback size for opaque objects without a declared size.
DEFAULT_OBJECT_BYTES = 256


def estimate_size(value: object) -> int:
    """Modelled encoded size of ``value`` in bytes.

    Deterministic, cheap, and defined for arbitrary nesting.  Objects
    exposing an integer ``size_bytes`` attribute are charged exactly
    that (plus envelope), which lets units and capsules control their
    modelled footprint.
    """
    return _OBJECT_OVERHEAD + _payload_size(value, depth=0)


def _payload_size(value: object, depth: int) -> int:
    if depth > 32:
        # Pathological nesting: charge the fallback rather than recurse on.
        return DEFAULT_OBJECT_BYTES
    if value is None:
        return 1
    declared = getattr(value, "size_bytes", None)
    if isinstance(declared, int) and not isinstance(value, (bool, int)):
        return declared + _OBJECT_OVERHEAD
    if isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return _NUMBER_BYTES
    if isinstance(value, bytes):
        return len(value)
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, Mapping):
        return sum(
            _payload_size(key, depth + 1) + _payload_size(item, depth + 1)
            for key, item in value.items()
        ) + _OBJECT_OVERHEAD
    if isinstance(value, (Sequence, set, frozenset)):
        return (
            sum(_payload_size(item, depth + 1) for item in value)
            + _OBJECT_OVERHEAD
        )
    return DEFAULT_OBJECT_BYTES
