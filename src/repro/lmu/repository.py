"""Code repositories: catalogues that COD requests are answered from.

A repository is the server-side store of publishable units — the
"trusted third party (a centralised source)" of the paper's dynamic-
update scenario, and equally the per-device catalogue a peer answers
from "in an ad-hoc scenario".
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..errors import UnitNotFound
from .units import CodeUnit, Requirement, Version


class CodeRepository:
    """A catalogue of code units, multiple versions per name.

    ``metrics`` (a :class:`~repro.sim.metrics.MetricsRegistry`, or
    None) receives ``repository.*`` counters and the catalogue-size
    gauge so serving activity shows up in run reports.
    """

    def __init__(
        self, name: str = "repository", metrics: Optional[Any] = None
    ) -> None:
        self.name = name
        self.metrics = metrics
        self._catalog: Dict[str, Dict[Version, CodeUnit]] = {}

    def publish(self, unit: CodeUnit) -> None:
        """Add (or replace) one unit version in the catalogue."""
        self._catalog.setdefault(unit.name, {})[unit.version] = unit
        if self.metrics is not None:
            self.metrics.counter("repository.publishes").increment()
            self.metrics.gauge("repository.units").set(len(self._catalog))

    def publish_all(self, units: List[CodeUnit]) -> None:
        for unit in units:
            self.publish(unit)

    def withdraw(self, name: str, version: Optional[Version] = None) -> None:
        """Remove a version (or every version) of ``name``."""
        if name not in self._catalog:
            raise UnitNotFound(f"repository has no unit {name!r}")
        if version is None:
            del self._catalog[name]
            return
        versions = self._catalog[name]
        if version not in versions:
            raise UnitNotFound(f"repository has no {name}@{version}")
        del versions[version]
        if not versions:
            del self._catalog[name]

    def __contains__(self, name: str) -> bool:
        return name in self._catalog

    def __len__(self) -> int:
        return len(self._catalog)

    def names(self) -> List[str]:
        return sorted(self._catalog)

    def versions_of(self, name: str) -> List[Version]:
        if name not in self._catalog:
            raise UnitNotFound(f"repository has no unit {name!r}")
        return sorted(self._catalog[name])

    def latest(self, name: str) -> CodeUnit:
        """The newest published version of ``name``."""
        versions = self._catalog.get(name)
        if not versions:
            raise UnitNotFound(f"repository has no unit {name!r}")
        return versions[max(versions)]

    def resolve(self, requirement: Requirement) -> CodeUnit:
        """The newest version satisfying ``requirement``.

        This is the resolver plugged into capsule building.
        """
        versions = self._catalog.get(requirement.name)
        if not versions:
            if self.metrics is not None:
                self.metrics.counter("repository.misses").increment()
            raise UnitNotFound(
                f"repository has no unit {requirement.name!r}"
            )
        matching = [
            version
            for version in versions
            if requirement.any_version
            or version.compatible_with(requirement.min_version)
        ]
        if not matching:
            if self.metrics is not None:
                self.metrics.counter("repository.misses").increment()
            raise UnitNotFound(
                f"no published version of {requirement.name} satisfies "
                f"{requirement}; have {sorted(map(str, versions))}"
            )
        if self.metrics is not None:
            self.metrics.counter("repository.resolutions").increment()
        return versions[max(matching)]

    def providers_of(self, capability: str) -> List[CodeUnit]:
        """Latest versions of units advertising an abstract capability."""
        providers = []
        for name in self.names():
            unit = self.latest(name)
            if capability in unit.provides:
                providers.append(unit)
        return providers

    def total_bytes(self) -> int:
        """Catalogue footprint if everything were preinstalled (E2)."""
        return sum(
            self.latest(name).size_bytes for name in self._catalog
        )
