"""The local codebase: a host's installed code units.

The codebase is what COD updates and what "conserving resources" in the
paper means concretely: installed units occupy a storage quota, usage is
tracked, and an eviction policy reclaims space for new installs —
never evicting *pinned* units (the middleware's own components).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..errors import DependencyError, QuotaExceeded, UnitNotFound, VersionConflict
from .units import CodeUnit, Requirement, UnitStats, Version

#: Given candidate (unit, stats) pairs, return the eviction victim order.
EvictionPolicy = Callable[[List[Tuple[CodeUnit, UnitStats]]], List[CodeUnit]]


def lru_policy(candidates: List[Tuple[CodeUnit, UnitStats]]) -> List[CodeUnit]:
    """Evict least-recently-used first."""
    ranked = sorted(candidates, key=lambda pair: (pair[1].last_used, pair[0].name))
    return [unit for unit, _ in ranked]


def lfu_policy(candidates: List[Tuple[CodeUnit, UnitStats]]) -> List[CodeUnit]:
    """Evict least-frequently-used first."""
    ranked = sorted(candidates, key=lambda pair: (pair[1].use_count, pair[0].name))
    return [unit for unit, _ in ranked]


def largest_first_policy(
    candidates: List[Tuple[CodeUnit, UnitStats]]
) -> List[CodeUnit]:
    """Evict the biggest units first (frees space fastest)."""
    ranked = sorted(
        candidates, key=lambda pair: (-pair[0].size_bytes, pair[0].name)
    )
    return [unit for unit, _ in ranked]


class Codebase:
    """Installed units of one host, under a storage quota.

    ``now`` is a clock callback (the middleware passes ``env.now``), so
    the codebase itself has no kernel dependency and is trivially
    testable.
    """

    def __init__(
        self,
        quota_bytes: float = float("inf"),
        eviction: Optional[EvictionPolicy] = lru_policy,
        now: Callable[[], float] = lambda: 0.0,
    ) -> None:
        if quota_bytes <= 0:
            raise ValueError("quota must be positive")
        self.quota_bytes = quota_bytes
        self.eviction = eviction
        self._now = now
        self._units: Dict[str, CodeUnit] = {}
        self._stats: Dict[str, UnitStats] = {}
        self.evictions = 0

    # -- queries ---------------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return sum(unit.size_bytes for unit in self._units.values())

    @property
    def free_bytes(self) -> float:
        return self.quota_bytes - self.used_bytes

    def __contains__(self, name: str) -> bool:
        return name in self._units

    def __len__(self) -> int:
        return len(self._units)

    def installed(self) -> List[CodeUnit]:
        return sorted(self._units.values(), key=lambda unit: unit.name)

    def get(self, name: str) -> CodeUnit:
        try:
            return self._units[name]
        except KeyError:
            raise UnitNotFound(f"unit {name!r} is not installed") from None

    def stats(self, name: str) -> UnitStats:
        self.get(name)
        return self._stats[name]

    def satisfies(self, requirement: Requirement) -> bool:
        unit = self._units.get(requirement.name)
        return unit is not None and requirement.satisfied_by(unit)

    def missing_requirements(self, unit: CodeUnit) -> List[Requirement]:
        """The declared dependencies of ``unit`` not currently satisfied."""
        return [req for req in unit.requires if not self.satisfies(req)]

    def inventory(self) -> Dict[str, Version]:
        """Name -> installed version, for differential COD requests."""
        return {name: unit.version for name, unit in self._units.items()}

    def providers_of(self, capability: str) -> List[CodeUnit]:
        """Installed units advertising an abstract capability tag."""
        return sorted(
            (
                unit
                for unit in self._units.values()
                if capability in unit.provides
            ),
            key=lambda unit: unit.name,
        )

    # -- mutation ----------------------------------------------------------------

    def install(self, unit: CodeUnit, pinned: bool = False) -> None:
        """Install (or upgrade to) ``unit``, evicting if space demands.

        Raises :class:`VersionConflict` when an incompatible (different
        major line or newer) version is already installed, and
        :class:`QuotaExceeded` when eviction cannot free enough space.
        """
        existing = self._units.get(unit.name)
        delta = unit.size_bytes
        if existing is not None:
            if existing.version > unit.version:
                raise VersionConflict(
                    f"{unit.name}: installed {existing.version} is newer "
                    f"than offered {unit.version}"
                )
            if existing.version.major != unit.version.major:
                raise VersionConflict(
                    f"{unit.name}: major line change "
                    f"{existing.version} -> {unit.version} needs explicit "
                    "uninstall"
                )
            delta = unit.size_bytes - existing.size_bytes
        if delta > self.free_bytes:
            self._make_room(delta - self.free_bytes, keep=unit.name)
        was_pinned = self._stats[unit.name].pinned if existing is not None else False
        self._units[unit.name] = unit
        stats = UnitStats(installed_at=self._now(), last_used=self._now())
        stats.pinned = pinned or was_pinned
        self._stats[unit.name] = stats

    def uninstall(self, name: str) -> CodeUnit:
        """Remove a unit, freeing its space.  Pinned units refuse."""
        unit = self.get(name)
        if self._stats[name].pinned:
            raise VersionConflict(f"unit {name!r} is pinned and cannot be removed")
        del self._units[name]
        del self._stats[name]
        return unit

    def pin(self, name: str) -> None:
        self.get(name)
        self._stats[name].pinned = True

    def unpin(self, name: str) -> None:
        self.get(name)
        self._stats[name].pinned = False

    def touch(self, name: str) -> CodeUnit:
        """Record a use of ``name`` (for LRU/LFU) and return the unit."""
        unit = self.get(name)
        self._stats[name].touch(self._now())
        return unit

    def _make_room(self, needed: float, keep: str) -> None:
        if self.eviction is None:
            raise QuotaExceeded(
                f"need {needed:.0f}B more but eviction is disabled"
            )
        candidates = [
            (unit, self._stats[unit.name])
            for unit in self._units.values()
            if not self._stats[unit.name].pinned and unit.name != keep
        ]
        victims = self.eviction(candidates)
        freed = 0.0
        for victim in victims:
            if freed >= needed:
                break
            del self._units[victim.name]
            del self._stats[victim.name]
            self.evictions += 1
            freed += victim.size_bytes
        if freed < needed:
            raise QuotaExceeded(
                f"quota {self.quota_bytes:.0f}B cannot fit unit; "
                f"only {freed:.0f}B evictable of {needed:.0f}B needed"
            )


def dependency_closure(
    roots: List[str],
    resolve: Callable[[Requirement], CodeUnit],
) -> List[CodeUnit]:
    """Dependency-closed install order for ``roots`` (dependencies first).

    ``resolve`` maps a requirement to the unit that satisfies it (the
    local codebase, a repository catalogue, ...).  Raises
    :class:`DependencyError` on cycles; missing units surface whatever
    ``resolve`` raises.
    """
    order: List[CodeUnit] = []
    placed: Dict[str, Version] = {}
    in_progress: List[str] = []

    def visit(requirement: Requirement) -> None:
        if requirement.name in placed:
            if not requirement.any_version and not placed[
                requirement.name
            ].compatible_with(requirement.min_version):
                raise DependencyError(
                    f"{requirement.name}: closure already pinned "
                    f"{placed[requirement.name]}, but {requirement} needed"
                )
            return
        if requirement.name in in_progress:
            cycle = " -> ".join(in_progress + [requirement.name])
            raise DependencyError(f"dependency cycle: {cycle}")
        in_progress.append(requirement.name)
        unit = resolve(requirement)
        if not requirement.satisfied_by(unit):
            raise DependencyError(
                f"resolver returned {unit.qualified_name}, which does not "
                f"satisfy {requirement}"
            )
        for dependency in unit.requires:
            visit(dependency)
        in_progress.pop()
        placed[unit.name] = unit.version
        order.append(unit)

    for root in roots:
        visit(Requirement.parse(root))
    return order
