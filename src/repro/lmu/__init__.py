"""Logical mobility units: versioned code, capsules, codebases, repositories.

This package is the Python stand-in for Java's classloading-based code
mobility: units are named and versioned, dependencies are declared and
closed over, bundles (capsules) move between hosts, and each host's
local codebase enforces a storage quota with pluggable eviction.
"""

from .capsule import (
    MANIFEST_BYTES,
    MANIFEST_ENTRY_BYTES,
    Capsule,
    Manifest,
    assemble_capsule,
    build_capsule,
    install_capsule,
)
from .codebase import (
    Codebase,
    EvictionPolicy,
    dependency_closure,
    largest_first_policy,
    lfu_policy,
    lru_policy,
)
from .repository import CodeRepository
from .serializer import DEFAULT_OBJECT_BYTES, estimate_size
from .units import (
    CodeUnit,
    DataUnit,
    Requirement,
    UnitStats,
    Version,
    code_unit,
)

__all__ = [
    "Capsule",
    "assemble_capsule",
    "Codebase",
    "CodeRepository",
    "CodeUnit",
    "DEFAULT_OBJECT_BYTES",
    "DataUnit",
    "EvictionPolicy",
    "MANIFEST_BYTES",
    "MANIFEST_ENTRY_BYTES",
    "Manifest",
    "Requirement",
    "UnitStats",
    "Version",
    "build_capsule",
    "code_unit",
    "dependency_closure",
    "estimate_size",
    "install_capsule",
    "largest_first_policy",
    "lfu_policy",
    "lru_policy",
]
