"""Capsules: the unit of code/state transfer between hosts.

A capsule is a dependency-closed bundle of code units plus optional
data units, described by a manifest and optionally signed.  REV ships a
capsule with the code to evaluate; COD answers with a capsule holding
the requested units; an agent *is* a capsule of its code plus its
serialised state.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import DependencyError, UnitNotFound
from .codebase import Codebase, dependency_closure
from .serializer import estimate_size
from .units import CodeUnit, DataUnit, Requirement

#: Modelled size of the manifest envelope per capsule.
MANIFEST_BYTES = 128
#: Modelled extra bytes per unit listed in the manifest.
MANIFEST_ENTRY_BYTES = 48

_capsule_ids = itertools.count(1)


@dataclass(frozen=True)
class Manifest:
    """What a capsule claims to contain, and who built it."""

    capsule_id: int
    sender: str
    code_names: Tuple[str, ...]
    data_names: Tuple[str, ...]
    built_at: float
    purpose: str  #: "cod-reply", "rev-request", "agent", "update", ...

    def digest_material(self) -> bytes:
        """Canonical bytes the signature covers."""
        body = "|".join(
            (
                str(self.capsule_id),
                self.sender,
                ",".join(self.code_names),
                ",".join(self.data_names),
                f"{self.built_at:.6f}",
                self.purpose,
            )
        )
        return body.encode("utf-8")


@dataclass
class Capsule:
    """A transferable bundle of code and data units."""

    manifest: Manifest
    code_units: Tuple[CodeUnit, ...]
    data_units: Tuple[DataUnit, ...] = ()
    #: Signature envelope attached by the security layer (or None).
    signature: Optional[object] = None
    #: Set by tamper-injection tests/attacks; verification recomputes
    #: digests over the *current* contents, so mutation breaks them.
    _tampered: bool = field(default=False, repr=False)

    @property
    def size_bytes(self) -> int:
        """Modelled wire footprint of the whole capsule."""
        units_size = sum(unit.size_bytes for unit in self.code_units)
        data_size = sum(unit.size_bytes for unit in self.data_units)
        entries = len(self.code_units) + len(self.data_units)
        signature_size = estimate_size(self.signature) if self.signature else 0
        return (
            MANIFEST_BYTES
            + entries * MANIFEST_ENTRY_BYTES
            + units_size
            + data_size
            + signature_size
        )

    def content_digest(self) -> str:
        """Hash over manifest and contained unit identities/sizes.

        This is the integrity anchor the signature covers: renaming,
        reversioning, resizing, adding, or removing units changes it.
        """
        hasher = hashlib.sha256()
        hasher.update(self.manifest.digest_material())
        for unit in self.code_units:
            hasher.update(unit.qualified_name.encode("utf-8"))
            hasher.update(str(unit.size_bytes).encode("utf-8"))
        for data in self.data_units:
            hasher.update(data.name.encode("utf-8"))
            hasher.update(str(estimate_size(data.payload)).encode("utf-8"))
        if self._tampered:
            hasher.update(b"tampered")
        return hasher.hexdigest()

    def code_unit(self, name: str) -> CodeUnit:
        for unit in self.code_units:
            if unit.name == name:
                return unit
        raise UnitNotFound(f"capsule has no code unit {name!r}")

    def data_unit(self, name: str) -> DataUnit:
        for unit in self.data_units:
            if unit.name == name:
                return unit
        raise UnitNotFound(f"capsule has no data unit {name!r}")

    def tamper(self) -> None:
        """Simulate in-flight modification (for security tests)."""
        self._tampered = True

    def __repr__(self) -> str:
        return (
            f"<Capsule #{self.manifest.capsule_id} {self.manifest.purpose} "
            f"{len(self.code_units)}c/{len(self.data_units)}d "
            f"{self.size_bytes}B>"
        )


def build_capsule(
    sender: str,
    purpose: str,
    roots: Sequence[str],
    resolve: Callable[[Requirement], CodeUnit],
    data_units: Sequence[DataUnit] = (),
    built_at: float = 0.0,
    already_installed: Optional[Dict[str, object]] = None,
) -> Capsule:
    """Assemble a dependency-closed capsule for ``roots``.

    ``already_installed`` maps unit name -> :class:`Version` the
    receiver is known to hold (see :meth:`Codebase.inventory`); those
    units are omitted when the held version is current (differential
    shipping).
    """
    closure = dependency_closure(list(roots), resolve)
    if already_installed is not None:
        closure = [
            unit
            for unit in closure
            if not (
                unit.name in already_installed
                and already_installed[unit.name] >= unit.version  # type: ignore[operator]
            )
        ]
    manifest = Manifest(
        capsule_id=next(_capsule_ids),
        sender=sender,
        code_names=tuple(unit.name for unit in closure),
        data_names=tuple(data.name for data in data_units),
        built_at=built_at,
        purpose=purpose,
    )
    return Capsule(
        manifest=manifest,
        code_units=tuple(closure),
        data_units=tuple(data_units),
    )


def assemble_capsule(
    sender: str,
    purpose: str,
    code_units: Sequence[CodeUnit],
    data_units: Sequence[DataUnit] = (),
    built_at: float = 0.0,
) -> Capsule:
    """Wrap already-chosen units into a capsule (no dependency resolution).

    Used where the caller owns the closure logic — notably agent
    migration, where the capsule is exactly the agent's code unit plus
    its serialised state.
    """
    manifest = Manifest(
        capsule_id=next(_capsule_ids),
        sender=sender,
        code_names=tuple(unit.name for unit in code_units),
        data_names=tuple(data.name for data in data_units),
        built_at=built_at,
        purpose=purpose,
    )
    return Capsule(
        manifest=manifest,
        code_units=tuple(code_units),
        data_units=tuple(data_units),
    )


def install_capsule(capsule: Capsule, codebase: Codebase, pinned: bool = False) -> List[str]:
    """Install every code unit of ``capsule`` into ``codebase``.

    Units arrive dependency-first (the capsule builder ordered them);
    returns the installed names.  Residual missing dependencies (e.g.
    omitted by differential shipping but then evicted) raise
    :class:`DependencyError` before anything is installed.
    """
    for unit in capsule.code_units:
        for requirement in unit.requires:
            in_capsule = any(
                requirement.satisfied_by(candidate)
                for candidate in capsule.code_units
            )
            if not in_capsule and not codebase.satisfies(requirement):
                raise DependencyError(
                    f"capsule unit {unit.qualified_name} needs {requirement}, "
                    "which is neither in the capsule nor installed"
                )
    installed = []
    for unit in capsule.code_units:
        codebase.install(unit, pinned=pinned)
        installed.append(unit.name)
    return installed
