"""Logical mobility units: the things that move.

Following Fuggetta, Picco & Vigna, what migrates is *code* (behaviour),
*data* (state), or both.  Here a :class:`CodeUnit` names a versioned
behaviour with declared dependencies and a modelled wire size; its
``factory`` produces a fresh executable instance on the host that runs
it.  A :class:`DataUnit` is a named blob of state.

In the authors' Java systems these were class files and serialised
objects; the Python stand-ins keep the semantics that matter to the
middleware — naming, versioning, dependency closure, transferability,
installability, and execution on arrival.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..errors import CodebaseError

_VERSION_RE = re.compile(r"^(\d+)\.(\d+)(?:\.(\d+))?$")


@dataclass(frozen=True, order=True)
class Version:
    """A ``major.minor.patch`` version with SemVer-ish compatibility."""

    major: int
    minor: int
    patch: int = 0

    @classmethod
    def parse(cls, text: str) -> "Version":
        match = _VERSION_RE.match(text.strip())
        if not match:
            raise CodebaseError(f"malformed version {text!r}")
        major, minor, patch = match.groups()
        return cls(int(major), int(minor), int(patch or 0))

    def compatible_with(self, requested: "Version") -> bool:
        """True when this version satisfies a request for ``requested``:
        same major line, and not older than requested."""
        return self.major == requested.major and self >= requested

    def __str__(self) -> str:
        return f"{self.major}.{self.minor}.{self.patch}"


@dataclass(frozen=True)
class Requirement:
    """A dependency on another unit: by name, at a minimum version."""

    name: str
    min_version: Version = Version(0, 0, 0)

    @classmethod
    def parse(cls, text: str) -> "Requirement":
        """Parse ``"name"`` or ``"name>=1.2.3"``."""
        if ">=" in text:
            name, version_text = text.split(">=", 1)
            return cls(name.strip(), Version.parse(version_text))
        return cls(text.strip())

    @property
    def any_version(self) -> bool:
        """True for a bare requirement: any version satisfies it."""
        return self.min_version == Version(0, 0, 0)

    def satisfied_by(self, unit: "CodeUnit") -> bool:
        if unit.name != self.name:
            return False
        return self.any_version or unit.version.compatible_with(self.min_version)

    def __str__(self) -> str:
        if self.min_version == Version(0, 0, 0):
            return self.name
        return f"{self.name}>={self.min_version}"


#: A factory produces one fresh executable instance of the unit's
#: behaviour.  The instance must be callable as ``instance(context, *args)``.
UnitFactory = Callable[[], Callable]


@dataclass(frozen=True)
class CodeUnit:
    """A named, versioned, transferable behaviour."""

    name: str
    version: Version
    factory: UnitFactory
    size_bytes: int
    requires: Tuple[Requirement, ...] = ()
    #: Human description, shown in catalogues.
    description: str = ""
    #: Abstract capability tags this unit provides (e.g. "codec:ogg").
    provides: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise CodebaseError("code unit needs a non-empty name")
        if self.size_bytes < 0:
            raise CodebaseError(f"negative size for unit {self.name!r}")

    @property
    def qualified_name(self) -> str:
        return f"{self.name}@{self.version}"

    def instantiate(self) -> Callable:
        """A fresh executable instance of this unit's behaviour."""
        return self.factory()

    def __repr__(self) -> str:
        return f"<CodeUnit {self.qualified_name} {self.size_bytes}B>"


def code_unit(
    name: str,
    version: str,
    factory: UnitFactory,
    size_bytes: int,
    requires: Optional[List[str]] = None,
    description: str = "",
    provides: Optional[List[str]] = None,
) -> CodeUnit:
    """Convenience constructor taking string versions and requirements."""
    return CodeUnit(
        name=name,
        version=Version.parse(version),
        factory=factory,
        size_bytes=size_bytes,
        requires=tuple(Requirement.parse(req) for req in (requires or [])),
        description=description,
        provides=tuple(provides or []),
    )


@dataclass(frozen=True)
class DataUnit:
    """A named blob of transferable state."""

    name: str
    payload: object
    size_bytes: int

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise CodebaseError(f"negative size for data unit {self.name!r}")

    def __repr__(self) -> str:
        return f"<DataUnit {self.name} {self.size_bytes}B>"


@dataclass
class UnitStats:
    """Usage bookkeeping the eviction policies consult."""

    installed_at: float = 0.0
    last_used: float = 0.0
    use_count: int = 0
    pinned: bool = False
    touched: List[float] = field(default_factory=list, repr=False)

    def touch(self, now: float) -> None:
        self.last_used = now
        self.use_count += 1
