"""Event primitives for the discrete-event kernel.

The kernel follows the classic generator-process design: a
:class:`~repro.sim.environment.Environment` owns a time-ordered queue of
:class:`Event` objects; processes are generators that ``yield`` events and
are resumed when those events fire.

An event moves through three states:

* *untriggered* — created but not yet scheduled;
* *triggered*  — given a value (or an exception) and placed on the queue;
* *processed*  — its callbacks have run; its value is final.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .environment import Environment

#: Sentinel distinguishing "no value yet" from a legitimate ``None`` value.
PENDING = object()


class Event:
    """A happening at a point in simulated time.

    Events carry a *value* on success or an exception on failure.
    Callbacks registered before processing run when the event fires;
    registering a callback on an already-processed event raises, because
    the moment has passed.

    Events are the kernel's unit of allocation — simulations create
    millions — so the class is slotted; subclasses that add state must
    declare their own ``__slots__`` to keep the saving.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: object = PENDING
        self._ok = True
        #: Set when a failure's exception was delivered to someone.
        self._defused = False

    def __repr__(self) -> str:
        return "<{} at t={:.6g}{}>".format(
            type(self).__name__,
            self.env.now,
            " (processed)" if self.processed else "",
        )

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is scheduled (or processed)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run and the value is final."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        if not self.triggered:
            raise SimulationError("event value is not yet available")
        return self._ok

    @property
    def value(self) -> object:
        """The event's value (or the exception instance if it failed)."""
        if self._value is PENDING:
            raise SimulationError("event value is not yet available")
        return self._value

    def succeed(self, value: object = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``.

        The exception propagates into every process waiting on this event;
        if nobody is waiting, the kernel re-raises it at processing time so
        failures never pass silently.
        """
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(self)`` when the event is processed."""
        if self.callbacks is None:
            raise SimulationError(f"{self!r} has already been processed")
        self.callbacks.append(callback)

    # -- hooks used by the kernel -----------------------------------------

    def _mark_processed(self) -> Optional[List[Callable[["Event"], None]]]:
        """Finalise the event; return the callbacks to run."""
        callbacks, self.callbacks = self.callbacks, None
        return callbacks


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation."""

    __slots__ = ("_delay",)

    def __init__(self, env: "Environment", delay: float, value: object = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self._delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)

    @property
    def delay(self) -> float:
        return self._delay


class Condition(Event):
    """Composite event over several child events.

    Fires when ``evaluate(children, fired_count)`` returns True, or fails
    as soon as any child fails.  The value of a condition is a dict
    mapping each *fired* child event to its value, in firing order.
    """

    __slots__ = ("_evaluate", "_events", "_fired", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[Sequence[Event], int], bool],
        events: Sequence[Event],
    ) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = tuple(events)
        self._fired: List[Event] = []
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise ValueError("cannot mix events from different environments")

        if not self._events:
            self.succeed({})
            return

        for event in self._events:
            if event.callbacks is None:
                # Already processed: account for it immediately.
                self._check(event)
            else:
                event.add_callback(self._check)

    @property
    def events(self) -> Tuple[Event, ...]:
        """The child events (immutable view; no copy per access)."""
        return self._events

    def _collect_values(self) -> dict:
        return {event: event.value for event in self._fired if event.ok}

    def _check(self, event: Event) -> None:
        if self.triggered:
            # Late-firing children of an already-decided condition must not
            # leak unhandled failures.
            if not event.ok:
                event._defused = True
            return
        self._count += 1
        self._fired.append(event)
        if not event.ok:
            event._defused = True
            self.fail(event.value)  # type: ignore[arg-type]
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect_values())


# Module-level evaluators: one shared function object instead of a fresh
# closure allocated per condition instance.
def _any_fired(events: Sequence[Event], count: int) -> bool:
    return count >= 1


def _all_fired(events: Sequence[Event], count: int) -> bool:
    return count == len(events)


class AnyOf(Condition):
    """Fires when the first of ``events`` fires."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Sequence[Event]) -> None:
        super().__init__(env, _any_fired, events)


class AllOf(Condition):
    """Fires when every one of ``events`` has fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Sequence[Event]) -> None:
        super().__init__(env, _all_fired, events)
