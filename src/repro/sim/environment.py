"""The discrete-event simulation environment (clock + event queue)."""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import List, Optional, Tuple

from ..errors import EmptySchedule, SimulationError, StopSimulation
from .events import AllOf, AnyOf, Event, Timeout
from .process import Process, ProcessGenerator

#: Queue entries are (time, priority, sequence, event).  ``priority`` 0 is
#: "urgent" (process resumptions), 1 is normal; ``sequence`` breaks ties
#: deterministically in scheduling order.
_QueueItem = Tuple[float, int, int, Event]


class Environment:
    """Holds simulated time and executes events in time order.

    All entities of a simulation (network, hosts, middleware, agents)
    share one environment.  Determinism: events at equal times run in a
    fixed order (urgent before normal, then FIFO), so a seeded simulation
    replays identically.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: List[_QueueItem] = []
        self._seq = 0
        #: Set while a process's generator is being advanced.
        self._resuming_process: Optional[Process] = None
        #: Attachment point for :class:`repro.obs.SimProfiler`; when
        #: None (the default) the kernel pays one check per step.
        self._profiler: Optional[object] = None
        #: Attachment point for :class:`repro.obs.TimeSeriesRecorder`
        #: (same contract: one ``is not None`` check per step when
        #: detached; ``on_step(now)`` after each event otherwise).
        self._sampler: Optional[object] = None

    def __repr__(self) -> str:
        return f"<Environment now={self._now:.6g} pending={len(self._queue)}>"

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- event factories ----------------------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event, to be succeeded/failed by someone."""
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """An event firing ``delay`` seconds from now with ``value``."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start running ``generator`` as a process."""
        return Process(self, generator, name=name)

    def any_of(self, events: List[Event]) -> AnyOf:
        """Fires when the first of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: List[Event]) -> AllOf:
        """Fires when all of ``events`` have fired."""
        return AllOf(self, events)

    # -- scheduling ----------------------------------------------------------

    def schedule(self, event: Event, delay: float = 0.0, priority: bool = False) -> None:
        """Place a triggered event on the queue ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._seq += 1
        heapq.heappush(
            self._queue, (self._now + delay, 0 if priority else 1, self._seq, event)
        )

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        try:
            when, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule("no more events scheduled") from None
        if when < self._now:
            raise SimulationError("event scheduled in the past")
        self._now = when
        callbacks = event._mark_processed()
        if callbacks is None:  # pragma: no cover - defensive
            return
        profiler = self._profiler
        if profiler is None:
            for callback in callbacks:
                callback(event)
        else:
            total = 0.0
            for callback in callbacks:
                started = perf_counter()
                callback(event)
                elapsed = perf_counter() - started
                profiler.record_callback(event, callback, elapsed)  # type: ignore[attr-defined]
                total += elapsed
            profiler.record_event(event, total)  # type: ignore[attr-defined]
        sampler = self._sampler
        if sampler is not None:
            # After the callbacks so a sample at time t reflects every
            # metric update the events at t produced.
            sampler.on_step(when)  # type: ignore[attr-defined]
        if not event._ok and not event._defused:
            # A failure nobody consumed: surface it rather than losing it.
            raise event._value  # type: ignore[misc]

    def run(self, until: object = None) -> object:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the queue is empty;
        * a number — run until that simulated time;
        * an :class:`Event` — run until it fires; its value is returned
          (a failed event re-raises its exception).
        """
        stop_at: Optional[float] = None
        if until is not None:
            if isinstance(until, Event):
                if until.callbacks is None:
                    # Already processed: nothing to run.
                    if not until.ok:
                        raise until.value  # type: ignore[misc]
                    return until.value
                until.add_callback(self._stop_on_event)
            else:
                stop_at = float(until)
                if stop_at < self._now:
                    raise ValueError(
                        f"until={stop_at} lies in the past (now={self._now})"
                    )
        try:
            while True:
                if stop_at is not None and self.peek() >= stop_at:
                    self._now = stop_at
                    return None
                self.step()
        except EmptySchedule:
            if isinstance(until, Event):
                raise SimulationError(
                    "schedule ran dry before the target event fired"
                ) from None
            if stop_at is not None:
                self._now = stop_at
            return None
        except StopSimulation as stop:
            event = stop.value
            assert isinstance(event, Event)
            if not event.ok:
                event._defused = True
                raise event.value  # type: ignore[misc]
            return event.value

    @staticmethod
    def _stop_on_event(event: Event) -> None:
        raise StopSimulation(event)
