"""Metric collection for simulations and benchmarks.

A :class:`MetricsRegistry` holds named metrics of four kinds:

* :class:`Counter`   — monotonically increasing totals (bytes sent, ...);
* :class:`Gauge`     — last-written instantaneous values (queue depth, ...);
* :class:`Histogram` — sample distributions with quantiles (latencies, ...);
* :class:`TimeSeries`— (time, value) points for plotted series.

All metrics are plain in-memory Python; ``snapshot()`` renders the whole
registry to a flat dict for table output and assertions in tests.

**Labels.**  Every accessor takes an optional ``labels={"node": ...}``
dimension.  A labeled call returns a *child* metric that forwards every
update to its flat parent, so the unlabeled family keeps reporting the
fleet-wide total verbatim — all existing baselines and diff directions
keep working — while the children add the per-node breakdown under
snapshot keys like ``net.bytes_sent{node="a"}``.  Cardinality is
bounded per family (:data:`DEFAULT_LABEL_CAPACITY`): past the cap, new
label values fold into one ``__other__`` bucket and the spill is
counted in ``obs.labels.overflow``.

**Retention.**  Gauges and histograms keep every written value for
end-of-run quantiles; ``MetricsRegistry(max_samples=N)`` opts into
bounded retention with deterministic ordinal-stride decimation (see
:class:`Histogram`), trading quantile resolution for O(N) memory on
city-scale runs.  Count, sum, and mean stay exact.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: Per-family bound on distinct label combinations; past it, new label
#: values fold into the ``__other__`` bucket.
DEFAULT_LABEL_CAPACITY = 64

#: The label value absorbing every series past the cardinality cap.
OVERFLOW_LABEL = "__other__"

_LABELED_KEY_RE = re.compile(
    r"^(?P<base>[^{]+)\{(?P<labels>[^}]*)\}(?P<suffix>.*)$"
)
_LABEL_PAIR_RE = re.compile(r'([A-Za-z_][\w.]*)="((?:[^"\\]|\\.)*)"')


def escape_label_value(value: str) -> str:
    """Escape a label value for ``name{k="v"}`` keys (Prometheus rules)."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


_UNESCAPE_RE = re.compile(r"\\(.)")

_UNESCAPE_MAP = {"n": "\n", '"': '"', "\\": "\\"}


def unescape_label_value(value: str) -> str:
    # Single left-to-right pass: sequential str.replace would corrupt
    # an escaped backslash followed by a literal 'n' (r"\\n" must
    # decode to backslash + 'n', not to a newline).
    return _UNESCAPE_RE.sub(
        lambda match: _UNESCAPE_MAP.get(match.group(1), match.group(0)),
        value,
    )


def format_labels(labels: Mapping[str, str]) -> str:
    """``{"node": "a"}`` → ``{node="a"}`` (keys sorted, values escaped)."""
    inner = ",".join(
        f'{key}="{escape_label_value(str(labels[key]))}"'
        for key in sorted(labels)
    )
    return "{" + inner + "}"


def labeled_name(name: str, labels: Mapping[str, str]) -> str:
    """The canonical storage/snapshot key of one labeled series."""
    return name + format_labels(labels)


def split_labeled(key: str) -> Tuple[str, Optional[Dict[str, str]]]:
    """Parse a snapshot key back into ``(flat key, labels or None)``.

    Stat suffixes survive the round trip on the flat side:
    ``a.b{node="x"}.p99`` → ``("a.b.p99", {"node": "x"})``.
    """
    match = _LABELED_KEY_RE.match(key)
    if match is None:
        return key, None
    labels = {
        pair.group(1): unescape_label_value(pair.group(2))
        for pair in _LABEL_PAIR_RE.finditer(match.group("labels"))
    }
    return match.group("base") + match.group("suffix"), labels


def rollup_by_label(
    metrics: Mapping[str, float], label: str = "node"
) -> Dict[str, Dict[str, float]]:
    """Group a flat snapshot's labeled keys per label value.

    Returns ``{label value: {flat metric key: value}}`` — the ``nodes``
    section of a run report.  Unlabeled keys are skipped (they are the
    fleet-wide totals the top-level ``metrics`` section already has).
    """
    rollup: Dict[str, Dict[str, float]] = {}
    for key, value in metrics.items():
        base, labels = split_labeled(key)
        if not labels or label not in labels:
            continue
        rollup.setdefault(labels[label], {})[base] = value
    return {node: rollup[node] for node in sorted(rollup)}


def interpolated_quantile(ordered: Sequence[float], q: float) -> float:
    """Linear-interpolated quantile ``q`` in [0, 1] of a sorted sequence."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile {q} outside [0, 1]")
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(math.floor(position))
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    low_value = ordered[low]
    high_value = ordered[high]
    # a + (b-a)*f keeps the result inside [a, b] under rounding.
    return low_value + (high_value - low_value) * fraction


class Counter:
    """A monotonically increasing total.

    A labeled child (``parent`` set) forwards every increment to the
    flat family total, so ``labels=`` call sites keep the unlabeled
    value bit-identical to the pre-label behaviour.
    """

    def __init__(self, name: str, parent: Optional["Counter"] = None) -> None:
        self.name = name
        self.value = 0.0
        self._parent = parent
        #: ``{key: value}`` for labeled children, ``None`` for parents.
        self.labels: Optional[Dict[str, str]] = None

    def increment(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        parent = self._parent
        if parent is not None:
            parent.value += amount
        self.value += amount

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value:g}>"


class Gauge:
    """The most recently written value.

    Every written value is also kept (append-only, sorted lazily into a
    copy on the first quantile query, exactly like :class:`Histogram`),
    so the distribution of a gauge over a run — notably its median,
    ``p50`` — is available next to the min/max extremes.  Labeled
    children forward each write to the flat parent (last write wins
    there, as if the call sites were unlabeled).  ``max_samples`` caps
    retention via the same ordinal-stride decimation as
    :class:`Histogram`; min/max/last stay exact, quantiles become
    approximate over the retained subsample.
    """

    def __init__(
        self,
        name: str,
        parent: Optional["Gauge"] = None,
        max_samples: Optional[int] = None,
    ) -> None:
        self.name = name
        self.value: float = 0.0
        self._parent = parent
        self.labels: Optional[Dict[str, str]] = None
        self.max_samples = max_samples
        self._max = -math.inf
        self._min = math.inf
        self._written: List[float] = []
        self._sorted: List[float] = []
        self._dirty = False
        self._observed = 0
        self._stride = 1

    def set(self, value: float) -> None:
        parent = self._parent
        if parent is not None:
            parent.set(value)
        self.value = value
        if value > self._max:
            self._max = value
        if value < self._min:
            self._min = value
        ordinal = self._observed
        self._observed = ordinal + 1
        cap = self.max_samples
        if cap is None:
            self._written.append(value)
            self._dirty = True
            return
        if ordinal % self._stride:
            return
        self._written.append(value)
        self._dirty = True
        if len(self._written) > cap:
            # Ordinal-stride decimation: keep every other retained
            # sample, so retained ordinals stay exact multiples of the
            # (doubled) stride — deterministic, input-order only.
            self._written = self._written[::2]
            self._stride *= 2

    def add(self, delta: float) -> None:
        self.set(self.value + delta)

    @property
    def max(self) -> float:
        """Largest value ever set (0.0 for a never-set gauge)."""
        return self._max if self._max != -math.inf else 0.0

    @property
    def min(self) -> float:
        """Smallest value ever set (0.0 for a never-set gauge)."""
        return self._min if self._min != math.inf else 0.0

    @property
    def touched(self) -> bool:
        """True once ``set``/``add`` has been called at least once."""
        return self._max != -math.inf

    @property
    def observed(self) -> int:
        """Total values ever written (decimation does not shrink it)."""
        return self._observed

    @property
    def retained(self) -> int:
        """Values currently held for quantile queries."""
        return len(self._written)

    def quantile(self, q: float) -> float:
        """Quantile ``q`` over the retained written values (0.0 if none)."""
        if self._dirty:
            self._sorted = sorted(self._written)
            self._dirty = False
        return interpolated_quantile(self._sorted, q)

    @property
    def p50(self) -> float:
        """Median of every value ever written (0.0 for a never-set gauge)."""
        return self.quantile(0.5)

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value:g}>"


class Histogram:
    """A distribution of samples with mean and quantile queries.

    ``observe`` is O(1): samples go into an append-only buffer; a
    *sorted copy* is built lazily on the first quantile/min/max query
    after new data (hot paths observe millions of samples; quantiles
    are read once at the end of a run).  The observation buffer itself
    is never reordered, so :meth:`samples_since` can hand out stable
    insertion-order windows — what the time-series recorder uses for
    windowed per-cadence quantiles.

    With ``max_samples`` set, retention is bounded by ordinal-stride
    decimation: whenever the buffer exceeds the cap it is compacted to
    every other element and the keep-stride doubles, so the retained
    ordinals are always exact multiples of the stride (pure function of
    the observation sequence — two same-seed runs decimate
    identically).  ``count``/``sum``/``mean`` remain exact; quantiles
    and min/max answer over the retained subsample.  Labeled children
    forward each observation to the flat parent.
    """

    def __init__(
        self,
        name: str,
        parent: Optional["Histogram"] = None,
        max_samples: Optional[int] = None,
    ) -> None:
        self.name = name
        self._parent = parent
        self.labels: Optional[Dict[str, str]] = None
        self.max_samples = max_samples
        self._samples: List[float] = []
        self._sorted: List[float] = []
        self._dirty = False
        self._sum = 0.0
        self._observed = 0
        self._stride = 1

    def observe(self, value: float) -> None:
        parent = self._parent
        if parent is not None:
            parent.observe(value)
        self._sum += value
        ordinal = self._observed
        self._observed = ordinal + 1
        cap = self.max_samples
        if cap is None:
            self._samples.append(value)
            self._dirty = True
            return
        if ordinal % self._stride:
            return
        self._samples.append(value)
        self._dirty = True
        if len(self._samples) > cap:
            self._samples = self._samples[::2]
            self._stride *= 2

    def _ordered(self) -> List[float]:
        if self._dirty:
            self._sorted = sorted(self._samples)
            self._dirty = False
        return self._sorted

    def samples_since(self, ordinal: int) -> List[float]:
        """Retained samples observed at or after ``ordinal``, in
        insertion order.

        ``ordinal`` counts *observations* (see :attr:`observed`), not
        buffer positions, so windows stay correct across decimation —
        without a cap the two are the same thing.
        """
        stride = self._stride
        if stride == 1:
            return self._samples[ordinal:]
        return self._samples[-(-ordinal // stride):]

    @property
    def count(self) -> int:
        """Total observations (exact even under decimation)."""
        return self._observed

    @property
    def retained(self) -> int:
        """Samples currently held for quantile queries."""
        return len(self._samples)

    @property
    def observed(self) -> int:
        """Alias of :attr:`count` (the window-bookkeeping name)."""
        return self._observed

    @property
    def mean(self) -> float:
        return self._sum / self._observed if self._observed else 0.0

    @property
    def total(self) -> float:
        return self._sum

    def quantile(self, q: float) -> float:
        """Linear-interpolated quantile ``q`` in [0, 1]."""
        return interpolated_quantile(self._ordered(), q)

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    #: ``p50`` is the naming used in snapshots (p50/p95/p99 family).
    p50 = median

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    @property
    def max(self) -> float:
        ordered = self._ordered()
        return ordered[-1] if ordered else 0.0

    @property
    def min(self) -> float:
        ordered = self._ordered()
        return ordered[0] if ordered else 0.0

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count} mean={self.mean:g}>"


class TimeSeries:
    """Ordered (time, value) observations for a plotted series."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.points: List[Tuple[float, float]] = []

    def record(self, time: float, value: float) -> None:
        if self.points and time < self.points[-1][0]:
            raise ValueError(f"time went backwards in series {self.name!r}")
        self.points.append((time, value))

    def __len__(self) -> int:
        return len(self.points)

    def last(self) -> Optional[Tuple[float, float]]:
        return self.points[-1] if self.points else None

    def values(self) -> List[float]:
        return [value for _, value in self.points]

    def integral(self) -> float:
        """Time-weighted integral (step interpolation)."""
        total = 0.0
        for (t0, v0), (t1, _) in zip(self.points, self.points[1:]):
            total += v0 * (t1 - t0)
        return total

    def time_average(self) -> float:
        """Time-weighted mean over the observed interval."""
        if len(self.points) < 2:
            return self.points[0][1] if self.points else 0.0
        span = self.points[-1][0] - self.points[0][0]
        return self.integral() / span if span > 0 else self.points[-1][1]


class MetricsRegistry:
    """Namespace of metrics, created lazily on first access.

    ``max_samples`` opts every gauge/histogram into bounded retention
    (see :class:`Histogram`); ``label_capacity`` bounds distinct label
    combinations per family before the ``__other__`` fold.
    """

    def __init__(
        self,
        max_samples: Optional[int] = None,
        label_capacity: int = DEFAULT_LABEL_CAPACITY,
    ) -> None:
        if max_samples is not None and max_samples < 2:
            raise ValueError(f"max_samples must be >= 2, got {max_samples}")
        if label_capacity < 1:
            raise ValueError("label_capacity must be >= 1")
        self.max_samples = max_samples
        self.label_capacity = label_capacity
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._series: Dict[str, TimeSeries] = {}
        #: (family, sorted label items) -> child metric.  Folded series
        #: alias their key to the family's ``__other__`` child, so a
        #: repeat overflow lookup is one dict hit.
        self._labeled: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], object] = {}
        #: family -> distinct labeled children created (the bound).
        self._cardinality: Dict[str, int] = {}

    # -- accessors -----------------------------------------------------------

    def counter(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Counter:
        if labels:
            return self._child(self._counters, self._new_counter, name, labels)
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Gauge:
        if labels:
            return self._child(self._gauges, self._new_gauge, name, labels)
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = self._new_gauge(name)
        return gauge

    def histogram(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Histogram:
        if labels:
            return self._child(
                self._histograms, self._new_histogram, name, labels
            )
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = self._new_histogram(name)
        return histogram

    def series(self, name: str) -> TimeSeries:
        return self._series.setdefault(name, TimeSeries(name))

    def _new_counter(self, name: str, parent: Optional[Counter] = None):
        return Counter(name, parent=parent)

    def _new_gauge(self, name: str, parent: Optional[Gauge] = None):
        return Gauge(name, parent=parent, max_samples=self.max_samples)

    def _new_histogram(self, name: str, parent: Optional[Histogram] = None):
        return Histogram(name, parent=parent, max_samples=self.max_samples)

    # -- labeled children ----------------------------------------------------

    def _child(self, store, factory, name: str, labels):
        key = (name, tuple(sorted((str(k), str(v)) for k, v in labels.items())))
        child = self._labeled.get(key)
        if child is not None:
            return child
        parent = store.get(name)
        if parent is None:
            parent = store[name] = factory(name)
        if self._cardinality.get(name, 0) >= self.label_capacity:
            # Past the family's cap: fold into the shared __other__
            # bucket (created on first spill) and count the overflow —
            # once per distinct folded series, since the alias is
            # cached under the original key.
            folded_key = (
                name,
                tuple((label, OVERFLOW_LABEL) for label, _ in key[1]),
            )
            child = self._labeled.get(folded_key)
            if child is None:
                child = self._register_child(store, factory, parent, folded_key)
            self.counter("obs.labels.overflow").increment()
            self._labeled[key] = child
            return child
        return self._register_child(store, factory, parent, key)

    def _register_child(self, store, factory, parent, key):
        name, items = key
        labels = dict(items)
        child = factory(labeled_name(name, labels), parent=parent)
        child.labels = labels
        store[child.name] = child
        self._labeled[key] = child
        self._cardinality[name] = self._cardinality.get(name, 0) + 1
        self.counter("obs.labels.series").increment()
        return child

    def labeled_children(self, name: str, label: str = "node"):
        """``{label value -> child}`` for one family (creates nothing).

        Folded series all surface as the single ``__other__`` entry.
        The health engine sweeps families through this accessor, so an
        armed-but-quiet engine leaves the registry untouched.
        """
        children: Dict[str, object] = {}
        for (family, _items), child in self._labeled.items():
            if family != name:
                continue
            value = child.labels.get(label) if child.labels else None
            if value is not None:
                children[value] = child
        return children

    def label_cardinality(self, name: str) -> int:
        """Distinct labeled series created for one family (bounded)."""
        return self._cardinality.get(name, 0)

    # -- rendering -----------------------------------------------------------

    def snapshot(self) -> Dict[str, float]:
        """Flatten every metric into ``name[.stat] -> value``.

        Labeled children appear under their ``family{k="v"}`` keys next
        to the flat family totals (see :func:`split_labeled` /
        :func:`rollup_by_label` for parsing them back apart).
        """
        snapshot: Dict[str, float] = {}
        for name, counter in self._counters.items():
            snapshot[name] = counter.value
        for name, gauge in self._gauges.items():
            snapshot[name] = gauge.value
            # Sane (0.0, never ±inf) even for never-set gauges.
            snapshot[f"{name}.min"] = gauge.min
            snapshot[f"{name}.max"] = gauge.max
            snapshot[f"{name}.p50"] = gauge.p50
        for name, histogram in self._histograms.items():
            snapshot[f"{name}.count"] = float(histogram.count)
            snapshot[f"{name}.sum"] = histogram.total
            snapshot[f"{name}.mean"] = histogram.mean
            snapshot[f"{name}.median"] = histogram.median
            snapshot[f"{name}.p50"] = histogram.p50
            snapshot[f"{name}.p95"] = histogram.p95
            snapshot[f"{name}.p99"] = histogram.p99
            snapshot[f"{name}.min"] = histogram.min
            snapshot[f"{name}.max"] = histogram.max
        for name, series in self._series.items():
            last = series.last()
            snapshot[f"{name}.last"] = last[1] if last else 0.0
        return snapshot

    def names(self) -> List[str]:
        return sorted(
            list(self._counters)
            + list(self._gauges)
            + list(self._histograms)
            + list(self._series)
        )
