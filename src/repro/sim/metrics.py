"""Metric collection for simulations and benchmarks.

A :class:`MetricsRegistry` holds named metrics of four kinds:

* :class:`Counter`   — monotonically increasing totals (bytes sent, ...);
* :class:`Gauge`     — last-written instantaneous values (queue depth, ...);
* :class:`Histogram` — sample distributions with quantiles (latencies, ...);
* :class:`TimeSeries`— (time, value) points for plotted series.

All metrics are plain in-memory Python; ``snapshot()`` renders the whole
registry to a flat dict for table output and assertions in tests.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple


def interpolated_quantile(ordered: Sequence[float], q: float) -> float:
    """Linear-interpolated quantile ``q`` in [0, 1] of a sorted sequence."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile {q} outside [0, 1]")
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(math.floor(position))
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    low_value = ordered[low]
    high_value = ordered[high]
    # a + (b-a)*f keeps the result inside [a, b] under rounding.
    return low_value + (high_value - low_value) * fraction


class Counter:
    """A monotonically increasing total."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def increment(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value:g}>"


class Gauge:
    """The most recently written value.

    Every written value is also kept (append-only, sorted lazily on the
    first quantile query, exactly like :class:`Histogram`), so the
    distribution of a gauge over a run — notably its median, ``p50`` —
    is available next to the min/max extremes.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0
        self._max = -math.inf
        self._min = math.inf
        self._written: List[float] = []
        self._dirty = False

    def set(self, value: float) -> None:
        self.value = value
        self._max = max(self._max, value)
        self._min = min(self._min, value)
        self._written.append(value)
        self._dirty = True

    def add(self, delta: float) -> None:
        self.set(self.value + delta)

    @property
    def max(self) -> float:
        """Largest value ever set (0.0 for a never-set gauge)."""
        return self._max if self._max != -math.inf else 0.0

    @property
    def min(self) -> float:
        """Smallest value ever set (0.0 for a never-set gauge)."""
        return self._min if self._min != math.inf else 0.0

    @property
    def touched(self) -> bool:
        """True once ``set``/``add`` has been called at least once."""
        return self._max != -math.inf

    def quantile(self, q: float) -> float:
        """Quantile ``q`` over every value ever written (0.0 if none)."""
        if self._dirty:
            self._written.sort()
            self._dirty = False
        return interpolated_quantile(self._written, q)

    @property
    def p50(self) -> float:
        """Median of every value ever written (0.0 for a never-set gauge)."""
        return self.quantile(0.5)

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value:g}>"


class Histogram:
    """A distribution of samples with mean and quantile queries.

    ``observe`` is O(1): samples go into an append-only buffer; a
    *sorted copy* is built lazily on the first quantile/min/max query
    after new data (hot paths observe millions of samples; quantiles
    are read once at the end of a run).  The observation buffer itself
    is never reordered, so :meth:`samples_since` can hand out stable
    insertion-order windows — what the time-series recorder uses for
    windowed per-cadence quantiles.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._samples: List[float] = []
        self._sorted: List[float] = []
        self._dirty = False
        self._sum = 0.0

    def observe(self, value: float) -> None:
        self._samples.append(value)
        self._dirty = True
        self._sum += value

    def _ordered(self) -> List[float]:
        if self._dirty:
            self._sorted = sorted(self._samples)
            self._dirty = False
        return self._sorted

    def samples_since(self, index: int) -> List[float]:
        """Samples observed after the first ``index``, insertion order."""
        return self._samples[index:]

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def mean(self) -> float:
        return self._sum / len(self._samples) if self._samples else 0.0

    @property
    def total(self) -> float:
        return self._sum

    def quantile(self, q: float) -> float:
        """Linear-interpolated quantile ``q`` in [0, 1]."""
        return interpolated_quantile(self._ordered(), q)

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    #: ``p50`` is the naming used in snapshots (p50/p95/p99 family).
    p50 = median

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    @property
    def max(self) -> float:
        ordered = self._ordered()
        return ordered[-1] if ordered else 0.0

    @property
    def min(self) -> float:
        ordered = self._ordered()
        return ordered[0] if ordered else 0.0

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count} mean={self.mean:g}>"


class TimeSeries:
    """Ordered (time, value) observations for a plotted series."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.points: List[Tuple[float, float]] = []

    def record(self, time: float, value: float) -> None:
        if self.points and time < self.points[-1][0]:
            raise ValueError(f"time went backwards in series {self.name!r}")
        self.points.append((time, value))

    def __len__(self) -> int:
        return len(self.points)

    def last(self) -> Optional[Tuple[float, float]]:
        return self.points[-1] if self.points else None

    def values(self) -> List[float]:
        return [value for _, value in self.points]

    def integral(self) -> float:
        """Time-weighted integral (step interpolation)."""
        total = 0.0
        for (t0, v0), (t1, _) in zip(self.points, self.points[1:]):
            total += v0 * (t1 - t0)
        return total

    def time_average(self) -> float:
        """Time-weighted mean over the observed interval."""
        if len(self.points) < 2:
            return self.points[0][1] if self.points else 0.0
        span = self.points[-1][0] - self.points[0][0]
        return self.integral() / span if span > 0 else self.points[-1][1]


class MetricsRegistry:
    """Namespace of metrics, created lazily on first access."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._series: Dict[str, TimeSeries] = {}

    def counter(self, name: str) -> Counter:
        return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._gauges.setdefault(name, Gauge(name))

    def histogram(self, name: str) -> Histogram:
        return self._histograms.setdefault(name, Histogram(name))

    def series(self, name: str) -> TimeSeries:
        return self._series.setdefault(name, TimeSeries(name))

    def snapshot(self) -> Dict[str, float]:
        """Flatten every metric into ``name[.stat] -> value``."""
        snapshot: Dict[str, float] = {}
        for name, counter in self._counters.items():
            snapshot[name] = counter.value
        for name, gauge in self._gauges.items():
            snapshot[name] = gauge.value
            # Sane (0.0, never ±inf) even for never-set gauges.
            snapshot[f"{name}.min"] = gauge.min
            snapshot[f"{name}.max"] = gauge.max
            snapshot[f"{name}.p50"] = gauge.p50
        for name, histogram in self._histograms.items():
            snapshot[f"{name}.count"] = float(histogram.count)
            snapshot[f"{name}.sum"] = histogram.total
            snapshot[f"{name}.mean"] = histogram.mean
            snapshot[f"{name}.median"] = histogram.median
            snapshot[f"{name}.p50"] = histogram.p50
            snapshot[f"{name}.p95"] = histogram.p95
            snapshot[f"{name}.p99"] = histogram.p99
            snapshot[f"{name}.min"] = histogram.min
            snapshot[f"{name}.max"] = histogram.max
        for name, series in self._series.items():
            last = series.last()
            snapshot[f"{name}.last"] = last[1] if last else 0.0
        return snapshot

    def names(self) -> List[str]:
        return sorted(
            list(self._counters)
            + list(self._gauges)
            + list(self._histograms)
            + list(self._series)
        )
