"""Generator-driven processes for the discrete-event kernel."""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from ..errors import Interrupt, SimulationError
from .events import Event, PENDING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .environment import Environment

ProcessGenerator = Generator[Event, object, object]


class _InterruptEvent(Event):
    """Internal event used to deliver an interrupt to a process."""

    __slots__ = ("process",)

    def __init__(self, env: "Environment", process: "Process", cause: object) -> None:
        super().__init__(env)
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        self.process = process
        self.add_callback(process._resume)
        env.schedule(self, priority=True)


class Process(Event):
    """An active entity driving a generator of events.

    The process itself is an event: it fires with the generator's return
    value when the generator finishes, or fails with the exception the
    generator raised.  Other processes may therefore ``yield`` a process
    to wait for its completion.
    """

    __slots__ = ("_generator", "name", "_target")

    def __init__(self, env: "Environment", generator: ProcessGenerator, name: str = "") -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process currently waits on (None when resuming
        #: or finished).
        self._target: Optional[Event] = None
        # Kick the generator off at the current simulation time.
        init = Event(env)
        init._ok = True
        init._value = None
        init.add_callback(self._resume)
        env.schedule(init, priority=True)

    def __repr__(self) -> str:
        return f"<Process {self.name!r}{' (ended)' if self.triggered else ''}>"

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event the process is currently waiting on, if any."""
        return self._target

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`~repro.errors.Interrupt` into the process.

        The process is rescheduled immediately; whatever event it was
        waiting for stays pending and may still fire later (its firing
        will simply no longer resume this process).
        """
        if not self.is_alive:
            raise SimulationError(f"{self!r} has already terminated")
        if self._target is None and not self.env._resuming_process is self:
            # The process has been created but its initialisation event has
            # not run yet; interrupting before the first resume is allowed
            # and will be delivered as the first thing the generator sees.
            pass
        _InterruptEvent(self.env, self, cause)

    # -- kernel plumbing ---------------------------------------------------

    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome."""
        if self.triggered:
            # Process already finished (e.g. interrupted to death while a
            # timeout was pending); swallow stale wakeups.
            if not event.ok:
                event._defused = True
            return
        # An interrupt may arrive while a real target is pending; detach so
        # the stale target's firing does not resume us twice.
        if self._target is not None and self._target is not event:
            if isinstance(event, _InterruptEvent):
                self._detach_from(self._target)
            else:
                # Stale wakeup from an event we abandoned after an interrupt.
                if not event.ok:
                    event._defused = True
                return
        self._target = None
        self.env._resuming_process = self
        try:
            while True:
                if event.ok:
                    next_target = self._generator.send(event.value)
                else:
                    event._defused = True
                    next_target = self._generator.throw(event.value)  # type: ignore[arg-type]
                if not isinstance(next_target, Event):
                    exc = SimulationError(
                        f"process {self.name!r} yielded {next_target!r}, "
                        "which is not an Event"
                    )
                    self._generator.throw(exc)
                    raise exc
                if next_target.env is not self.env:
                    exc = SimulationError(
                        f"process {self.name!r} yielded an event from a "
                        "different environment"
                    )
                    self._generator.throw(exc)
                    raise exc
                if next_target.callbacks is not None:
                    # Pending: wait for it.
                    next_target.add_callback(self._resume)
                    self._target = next_target
                    break
                # Already processed: consume its outcome immediately.
                event = next_target
        except StopIteration as stop:
            self._ok = True
            self._value = stop.value
            self.env.schedule(self, priority=True)
        except BaseException as error:
            if isinstance(error, (KeyboardInterrupt, SystemExit)):
                raise
            self._ok = False
            self._value = error
            self.env.schedule(self, priority=True)
        finally:
            self.env._resuming_process = None

    def _detach_from(self, target: Event) -> None:
        if target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
