"""Structured trace log of simulation happenings.

Traces are the debugging and analysis backbone: every substrate emits
records (``time``, ``source``, ``kind``, free-form fields) into one
:class:`TraceLog`, which supports filtering and compact rendering.
Tracing defaults to a bounded ring so long experiments do not exhaust
memory.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One traced happening."""

    time: float
    source: str
    kind: str
    fields: Dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        details = " ".join(f"{key}={value}" for key, value in self.fields.items())
        return f"[{self.time:12.6f}] {self.source:<24} {self.kind:<20} {details}"


class TraceLog:
    """Bounded in-memory log of :class:`TraceRecord` entries.

    ``count_when_disabled`` (default True) keeps per-kind counters
    running even while the log is disabled, so cheap always-on event
    accounting survives with record storage off.  Pass False when the
    disabled log must be a true no-op — e.g. when profiling, so that
    counting work does not skew the numbers, or when a benchmark wants
    the zero-overhead baseline.  This is an explicit contract, not an
    accident of ``emit``'s ordering: :meth:`count` documents whether
    its numbers include the disabled period.
    """

    def __init__(
        self,
        max_records: int = 100_000,
        enabled: bool = True,
        count_when_disabled: bool = True,
    ) -> None:
        self.enabled = enabled
        self.count_when_disabled = count_when_disabled
        self._records: Deque[TraceRecord] = deque(maxlen=max_records)
        self._kind_counts: Dict[str, int] = {}
        #: Optional :class:`~repro.obs.health.FlightRecorder` sink fed
        #: *before* the enabled check, so last-N per-node context is
        #: captured even on runs that keep tracing off.
        self.flight = None

    def emit(self, time: float, source: str, kind: str, **fields: object) -> None:
        """Record one happening (cheap no-op when disabled)."""
        flight = self.flight
        if flight is not None:
            flight.record(time, source, kind, fields)
        if not self.enabled:
            if self.count_when_disabled:
                self._kind_counts[kind] = self._kind_counts.get(kind, 0) + 1
            return
        self._kind_counts[kind] = self._kind_counts.get(kind, 0) + 1
        self._records.append(TraceRecord(time, source, kind, fields))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def count(self, kind: str) -> int:
        """How many records of ``kind`` were emitted.

        Includes emissions during disabled periods only when the log
        was constructed with ``count_when_disabled=True`` (the
        default).
        """
        return self._kind_counts.get(kind, 0)

    def select(
        self,
        kind: Optional[str] = None,
        source: Optional[str] = None,
        where: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> List[TraceRecord]:
        """Records matching every given filter, in emission order."""
        selected = []
        for record in self._records:
            if kind is not None and record.kind != kind:
                continue
            if source is not None and record.source != source:
                continue
            if where is not None and not where(record):
                continue
            selected.append(record)
        return selected

    def render(self, limit: int = 50) -> str:
        """The last ``limit`` records as aligned text lines."""
        records = list(self._records)[-limit:]
        return "\n".join(record.render() for record in records)

    def clear(self) -> None:
        self._records.clear()
        self._kind_counts.clear()
