"""Discrete-event simulation kernel.

A from-scratch generator-process kernel in the style popularised by
SimPy, plus the supporting cast a systems simulation needs: blocking
stores, counting resources, named deterministic random streams, a
metrics registry, and a structured trace log.

Quick taste::

    from repro.sim import Environment

    env = Environment()

    def pinger(env):
        while True:
            yield env.timeout(1.0)
            print("ping at", env.now)

    env.process(pinger(env))
    env.run(until=3.5)
"""

from .environment import Environment
from .events import AllOf, AnyOf, Condition, Event, Timeout
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, TimeSeries
from .process import Process
from .rng import RandomStreams, derive_seed
from .stores import Resource, Store
from .tracing import TraceLog, TraceRecord

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Counter",
    "Environment",
    "Event",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Process",
    "RandomStreams",
    "Resource",
    "Store",
    "TimeSeries",
    "Timeout",
    "TraceLog",
    "TraceRecord",
    "derive_seed",
]
