"""Blocking FIFO stores and counting resources built on the kernel.

These are the coordination primitives the network and middleware layers
use: a :class:`Store` models an inbox or queue (producers ``put``,
consumers ``yield store.get()``); a :class:`Resource` models a limited
facility such as a radio channel or a CPU.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Generic, List, Optional, TypeVar

from ..errors import SimulationError
from .environment import Environment
from .events import Event

T = TypeVar("T")


class StorePut(Event):
    """Request to add ``item`` to a store; fires when accepted."""

    def __init__(self, store: "Store", item: object) -> None:
        super().__init__(store.env)
        self.item = item
        store._put_waiters.append(self)
        store._service()


class StoreGet(Event):
    """Request to take one item; fires with the item when available.

    An optional ``predicate`` turns this into a filtered get: only an
    item satisfying the predicate is delivered (items are still examined
    in FIFO order; non-matching items stay for other getters).
    """

    def __init__(self, store: "Store", predicate: Optional[Callable[[object], bool]] = None) -> None:
        super().__init__(store.env)
        self.predicate = predicate
        store._get_waiters.append(self)
        store._service()

    def cancel(self) -> None:
        """Withdraw an unfired get request (e.g. after a timeout race)."""
        if not self.triggered:
            self._cancelled = True


class Store(Generic[T]):
    """Unbounded-or-bounded FIFO store of items.

    ``capacity`` of ``inf`` (default) never blocks producers.  With a
    finite capacity, ``put`` events stay pending until space frees up.
    """

    def __init__(self, env: Environment, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: Deque[T] = deque()
        self._put_waiters: Deque[StorePut] = deque()
        self._get_waiters: Deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: T) -> StorePut:
        """Offer ``item``; the returned event fires once it is stored."""
        return StorePut(self, item)

    def get(self, predicate: Optional[Callable[[T], bool]] = None) -> StoreGet:
        """Request an item; the returned event fires with it."""
        return StoreGet(self, predicate)  # type: ignore[arg-type]

    def try_get(self) -> Optional[T]:
        """Non-blocking take of the head item, or None when empty."""
        if not self.items:
            return None
        item = self.items.popleft()
        self._service()
        return item

    def _service(self) -> None:
        """Match pending puts with space and pending gets with items."""
        progress = True
        while progress:
            progress = False
            # Admit puts while there is capacity.
            while self._put_waiters and len(self.items) < self.capacity:
                put = self._put_waiters.popleft()
                self.items.append(put.item)  # type: ignore[arg-type]
                put.succeed()
                progress = True
            # Serve gets in FIFO order.
            served: List[StoreGet] = []
            for get in list(self._get_waiters):
                if getattr(get, "_cancelled", False) or get.triggered:
                    self._get_waiters.remove(get)
                    continue
                item = self._find_match(get)
                if item is not _NO_MATCH:
                    self._get_waiters.remove(get)
                    get.succeed(item)
                    served.append(get)
                    progress = True
            if not self.items and not self._put_waiters:
                break

    def _find_match(self, get: StoreGet) -> object:
        if get.predicate is None:
            if self.items:
                return self.items.popleft()
            return _NO_MATCH
        for index, item in enumerate(self.items):
            if get.predicate(item):
                del self.items[index]
                return item
        return _NO_MATCH


_NO_MATCH = object()


class ResourceRequest(Event):
    """Pending claim on a :class:`Resource` slot."""

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        resource._waiters.append(self)
        resource._service()

    def __enter__(self) -> "ResourceRequest":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.resource.release(self)


class Resource:
    """Counting resource with ``capacity`` concurrent slots."""

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self._users: List[ResourceRequest] = []
        self._waiters: Deque[ResourceRequest] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiters)

    def request(self) -> ResourceRequest:
        """Claim a slot; the event fires when the slot is granted."""
        return ResourceRequest(self)

    def release(self, request: ResourceRequest) -> None:
        """Return a previously granted slot."""
        if request in self._users:
            self._users.remove(request)
            self._service()
        else:
            # Releasing an ungranted request withdraws it from the queue.
            try:
                self._waiters.remove(request)
            except ValueError:
                raise SimulationError("release of a request never made") from None

    def _service(self) -> None:
        while self._waiters and len(self._users) < self.capacity:
            request = self._waiters.popleft()
            self._users.append(request)
            request.succeed()
