"""Deterministic named random streams.

Every stochastic component of a simulation draws from its own named
stream derived from one root seed.  Adding a new component therefore
never perturbs the draws of existing ones, and any experiment is exactly
reproducible from ``(root_seed, stream_name)``.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(root_seed: int, name: str) -> int:
    """Stable 64-bit seed for stream ``name`` under ``root_seed``."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """Factory of independent, reproducible :class:`random.Random` streams."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The stream for ``name`` (created on first use, then cached)."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self.root_seed, name))
            self._streams[name] = stream
        return stream

    def spawn(self, name: str) -> "RandomStreams":
        """A child factory whose streams are independent of this one's."""
        return RandomStreams(derive_seed(self.root_seed, f"spawn:{name}"))

    def __contains__(self, name: str) -> bool:
        return name in self._streams
