"""Plain-text tables and series for experiment output.

Every benchmark prints its table/figure through these helpers so the
rows EXPERIMENTS.md quotes look identical across experiments.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple


def format_value(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        if abs(value) >= 0.01:
            return f"{value:.3f}"
        return f"{value:.2e}"
    return str(value)


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    note: Optional[str] = None,
) -> str:
    """An aligned monospace table with a title rule."""
    formatted = [[format_value(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in formatted:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "=" * len(title)]
    lines.append(
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    )
    lines.append("  ".join("-" * width for width in widths))
    for row in formatted:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    if note:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def render_series(
    title: str,
    x_label: str,
    series: Sequence[Tuple[str, Sequence[Tuple[float, float]]]],
) -> str:
    """A figure as aligned columns: x then one column per series."""
    xs: List[float] = sorted({x for _name, points in series for x, _y in points})
    headers = [x_label] + [name for name, _points in series]
    rows = []
    lookup = [dict(points) for _name, points in series]
    for x in xs:
        row: List[object] = [x]
        for points in lookup:
            row.append(points.get(x, float("nan")))
        rows.append(row)
    return render_table(title, headers, rows)


def crossover(
    points_a: Sequence[Tuple[float, float]],
    points_b: Sequence[Tuple[float, float]],
) -> Optional[float]:
    """First x at which series B drops to/below series A (B wins), or None.

    Both series must be sampled at identical x values.
    """
    a_lookup = dict(points_a)
    for x, y_b in sorted(points_b):
        y_a = a_lookup.get(x)
        if y_a is not None and y_b <= y_a:
            return x
    return None
