"""Analysis helpers: tables, series, crossovers, small-sample statistics."""

from .stats import (
    Summary,
    mean,
    proportion_ci95,
    sample_stddev,
    summarize,
    t_critical_95,
)
from .tables import crossover, format_value, render_series, render_table

__all__ = [
    "Summary",
    "crossover",
    "format_value",
    "mean",
    "proportion_ci95",
    "render_series",
    "render_table",
    "sample_stddev",
    "summarize",
    "t_critical_95",
]
