"""Small-sample statistics for multi-trial experiment cells.

The disaster and spray experiments average a handful of seeded trials;
these helpers report them honestly: mean, standard deviation, and a
95% confidence half-width using Student-t critical values for small n
(the usual normal approximation misleads below ~30 samples).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

#: Two-sided 95% Student-t critical values by degrees of freedom (1..30).
_T95 = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
]
_T95_LARGE = 1.960


def t_critical_95(degrees_of_freedom: int) -> float:
    """Two-sided 95% t critical value."""
    if degrees_of_freedom < 1:
        raise ValueError("need at least 1 degree of freedom")
    if degrees_of_freedom <= len(_T95):
        return _T95[degrees_of_freedom - 1]
    return _T95_LARGE


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of an empty sample")
    return sum(values) / len(values)


def sample_stddev(values: Sequence[float]) -> float:
    """Unbiased (n-1) standard deviation; 0 for singleton samples."""
    if not values:
        raise ValueError("stddev of an empty sample")
    if len(values) == 1:
        return 0.0
    centre = mean(values)
    return math.sqrt(
        sum((value - centre) ** 2 for value in values) / (len(values) - 1)
    )


@dataclass(frozen=True)
class Summary:
    """A sample summarised for a results table."""

    count: int
    mean: float
    stddev: float
    ci95_halfwidth: float
    minimum: float
    maximum: float

    @property
    def ci_low(self) -> float:
        return self.mean - self.ci95_halfwidth

    @property
    def ci_high(self) -> float:
        return self.mean + self.ci95_halfwidth

    def __str__(self) -> str:
        return f"{self.mean:.3g} ± {self.ci95_halfwidth:.2g} (n={self.count})"


def summarize(values: Sequence[float]) -> Summary:
    """Mean / stddev / 95% CI half-width / extremes of a sample."""
    if not values:
        raise ValueError("summary of an empty sample")
    centre = mean(values)
    spread = sample_stddev(values)
    if len(values) > 1:
        halfwidth = (
            t_critical_95(len(values) - 1) * spread / math.sqrt(len(values))
        )
    else:
        halfwidth = float("inf")
    return Summary(
        count=len(values),
        mean=centre,
        stddev=spread,
        ci95_halfwidth=halfwidth,
        minimum=min(values),
        maximum=max(values),
    )


def proportion_ci95(successes: int, trials: int) -> float:
    """95% half-width for a success proportion (Wald with small-n floor).

    Crude but adequate for annotating delivery-ratio cells; never
    reports an interval tighter than the one-trial resolution.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes out of range")
    p = successes / trials
    wald = 1.96 * math.sqrt(p * (1 - p) / trials)
    return max(wald, 1.0 / (2 * trials))
