"""Seed-stable merge of per-job RunReports into one matrix report.

The merge is a *pure function* of the job reports: jobs are folded in
sorted-key order whatever order the worker pool finished them in, so
the merged document is bit-identical across runs, worker counts, and
machines (two different ``--jobs`` values produce the same bytes).

The document reuses the schema-v3 vocabulary end to end:

* every job's flat (unlabeled) metrics are re-emitted as labeled
  children ``metric{job="scenario/plan/s7"}`` — the same
  ``labeled_name`` convention per-node metrics use — and
  ``rollup_by_label(..., "job")`` turns them into the per-job sections
  under ``nodes``, so ``python -m repro report`` renders a matrix
  report with zero new code;
* cross-job aggregates land under ``agg.<metric>.<stat>`` with
  ``min``/``p50``/``p90``/``max``/``mean`` stats — and because the
  :mod:`repro.obs.diff` direction globs match on substrings
  (``*completion_rate*``, ``*seconds*``), aggregates inherit their
  base metric's higher/lower-is-better semantics in baselines for
  free;
* the orchestrator's own figures live in the ``runner.*`` family
  (jobs, failures, replay mismatches) — deliberately *excluding* wall
  time, so the merged report stays deterministic; wall-clock numbers
  belong to benchmarks and the CLI verdict, not the document.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from ..obs.report import SCHEMA_VERSION
from ..sim.metrics import (
    interpolated_quantile,
    labeled_name,
    rollup_by_label,
    split_labeled,
)
from .spec import RunMatrix

#: Cross-job aggregate statistics, in emission order.
AGG_STATS = ("min", "p50", "p90", "max", "mean")


def _aggregate(values: Sequence[float]) -> Dict[str, float]:
    ordered = sorted(values)
    return {
        "min": ordered[0],
        "p50": interpolated_quantile(ordered, 0.5),
        "p90": interpolated_quantile(ordered, 0.9),
        "max": ordered[-1],
        "mean": sum(ordered) / len(ordered),
    }


def merge_matrix_report(
    matrix: RunMatrix,
    results: Mapping[str, Mapping[str, object]],
    failures: Optional[Mapping[str, str]] = None,
    replay_mismatches: Sequence[str] = (),
) -> Dict[str, object]:
    """Fold per-job report dicts into one deterministic matrix report.

    ``results`` maps job key → full RunReport dict; ``failures`` maps
    job key → one-line error description for jobs that raised instead
    of reporting.  Iteration is over *sorted* keys everywhere, so the
    output is independent of completion order.
    """
    failures = dict(failures or {})
    metrics: Dict[str, float] = {}
    kind_counts: Dict[str, int] = {}
    by_name: Dict[str, List[float]] = {}
    sim_time_total = 0.0
    created_at = 0.0

    for key in sorted(results):
        document = results[key]
        job_metrics = document.get("metrics") or {}
        for name in sorted(job_metrics):  # type: ignore[arg-type]
            value = job_metrics[name]  # type: ignore[index]
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            base, labels = split_labeled(name)
            if labels:
                # Per-node children stay inside the job's own report;
                # re-labeling them would nest label sets the snapshot
                # grammar has no syntax for.
                continue
            metrics[labeled_name(base, {"job": key})] = float(value)
            by_name.setdefault(base, []).append(float(value))
        for kind, count in sorted(
            (document.get("kind_counts") or {}).items()  # type: ignore[union-attr]
        ):
            kind_counts[kind] = kind_counts.get(kind, 0) + int(count)
        env = document.get("env") or {}
        sim_time = env.get("sim_time")  # type: ignore[union-attr]
        if isinstance(sim_time, (int, float)):
            sim_time_total += float(sim_time)
        stamp = document.get("created_at")
        if isinstance(stamp, (int, float)):
            created_at = max(created_at, float(stamp))

    for base in sorted(by_name):
        for stat, value in _aggregate(by_name[base]).items():
            metrics[f"agg.{base}.{stat}"] = value

    # Per-job success indicator: failed jobs appear in the rollup too,
    # so `repro report` shows exactly which cells died.
    for key in sorted(results):
        metrics[labeled_name("runner.job_ok", {"job": key})] = 1.0
    for key in sorted(failures):
        metrics[labeled_name("runner.job_ok", {"job": key})] = 0.0

    metrics.update(
        {
            "runner.jobs": float(len(results) + len(failures)),
            "runner.completed_jobs": float(len(results)),
            "runner.failures": float(len(failures)),
            "runner.replay_mismatches": float(len(replay_mismatches)),
            "runner.sim_seconds_total": sim_time_total,
        }
    )

    import platform
    import sys

    import repro

    return {
        "schema": SCHEMA_VERSION,
        "name": matrix.name,
        # The latest job's (sim-time) stamp: deterministic, and still
        # "when the matrix ended" in simulated terms.
        "created_at": created_at,
        # Worker count and wall time are deliberately absent: the
        # merged document must not depend on *how* the matrix was
        # executed, only on what the jobs reported.
        "env": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "repro_version": repro.__version__,
            "jobs": len(results) + len(failures),
            "scenarios": len(matrix.scenarios),
            "seeds": len(matrix.seeds),
            "plans": len(matrix.plans),
        },
        "params": matrix.to_dict(),
        "metrics": metrics,
        "kind_counts": kind_counts,
        "profile": None,
        "spans": [],
        "series": None,
        "nodes": rollup_by_label(metrics, label="job") or None,
        "health": None,
        "flight": None,
    }
