"""The matrix orchestrator: fan jobs out, merge reports, verify replay.

:class:`MatrixOrchestrator` executes a :class:`~repro.runner.RunMatrix`
either serially in-process or across a ``multiprocessing`` worker pool
(``spawn`` context, so workers import a clean interpreter — the same
start method on every platform, and the one that exposes hidden module
state instead of inheriting it via fork).  Each job is hermetic by
construction: the scenario builds a fresh :class:`~repro.core.World`
(own kernel, RNG streams seeded from the job's seed, own metrics
registry) inside a :func:`~repro.net.message.fresh_message_ids` scope,
so a job's report bytes never depend on which worker ran it or what
ran there before.

That hermeticity is *checked*, not assumed: ``strict=True`` replays
every pooled job in the parent process and demands byte-for-byte
identical report JSON — the cross-process replay invariant that makes
matrix results trustworthy.  Failures never take the matrix down; they
are captured per job and surface in the merged report
(``runner.failures``, ``runner.job_ok{job=...}``) and the CLI verdict.
"""

from __future__ import annotations

import json
import multiprocessing
import traceback
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Tuple

from ..net.message import fresh_message_ids
from .merge import merge_matrix_report
from .scenarios import resolve_scenario
from .spec import MatrixJob, RunMatrix

#: Job outcome statuses shipped back from workers.
_OK = "ok"
_ERROR = "error"


def execute_job(job_dict: Dict[str, object]) -> Tuple[str, str, object]:
    """Run one matrix job; the worker-side entry point.

    Takes the job as a plain dict (spawn-picklable either way, but a
    dict keeps the pool payload inspectable) and returns
    ``(job key, status, report dict | error text)``.  Exceptions are
    captured per job so one bad cell cannot poison the pool.
    """
    job = MatrixJob.from_dict(job_dict)
    try:
        target = resolve_scenario(job.scenario)
        with fresh_message_ids():
            report = target(job.seed, plan=job.plan, **job.kwargs)
        if not isinstance(report, dict):
            raise TypeError(
                f"scenario {job.scenario!r} returned "
                f"{type(report).__name__}, want a RunReport dict"
            )
        return job.key, _OK, report
    except Exception as error:  # noqa: BLE001 - per-job containment
        detail = traceback.format_exc(limit=8).strip().splitlines()[-1]
        return job.key, _ERROR, f"{type(error).__name__}: {error} [{detail}]"


def report_bytes(document: Dict[str, object]) -> str:
    """The canonical byte representation replay identity is judged on."""
    return json.dumps(document, sort_keys=True)


@dataclass
class MatrixResult:
    """What one orchestrated matrix run produced."""

    matrix: RunMatrix
    #: Per-job full RunReport dicts, by job key (completed jobs only).
    reports: Dict[str, Dict[str, object]]
    #: Per-job one-line error descriptions (failed jobs only).
    failures: Dict[str, str]
    #: Job keys whose in-process replay did not match the pooled bytes.
    replay_mismatches: List[str]
    #: The merged matrix report (see :mod:`repro.runner.merge`).
    report: Dict[str, object]
    workers: int
    strict: bool
    wall_seconds: float
    replayed: int = 0
    job_order: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures and not self.replay_mismatches

    @property
    def verdict(self) -> str:
        return "ok" if self.ok else "failed"

    def to_verdict(self) -> Dict[str, object]:
        """The machine-readable summary the CLI prints/writes."""
        return {
            "name": self.matrix.name,
            "verdict": self.verdict,
            "jobs": len(self.reports) + len(self.failures),
            "completed": len(self.reports),
            "failures": {
                key: self.failures[key] for key in sorted(self.failures)
            },
            "strict": self.strict,
            "replayed": self.replayed,
            "replay_mismatches": sorted(self.replay_mismatches),
            "workers": self.workers,
            "wall_seconds": round(self.wall_seconds, 6),
        }

    def render(self) -> str:
        lines = [
            f"matrix {self.matrix.name!r}: {len(self.reports)}/"
            f"{len(self.reports) + len(self.failures)} job(s) completed "
            f"on {self.workers} worker(s) in {self.wall_seconds:.2f}s"
        ]
        for key in self.job_order:
            if key in self.failures:
                lines.append(f"  FAIL {key}: {self.failures[key]}")
                continue
            marker = (
                "REPLAY-MISMATCH" if key in self.replay_mismatches else "ok"
            )
            metrics = self.reports[key].get("metrics") or {}
            rate = metrics.get("chaos.completion_rate")
            extra = (
                f" completion={rate:g}"
                if isinstance(rate, (int, float))
                else ""
            )
            lines.append(f"  {marker:>4} {key}{extra}")
        if self.strict:
            lines.append(
                f"  strict replay: {self.replayed} job(s) re-run "
                f"in-process, {len(self.replay_mismatches)} mismatch(es)"
            )
        lines.append(f"verdict: {self.verdict.upper()}")
        return "\n".join(lines)


class MatrixOrchestrator:
    """Execute a run matrix and merge the results deterministically.

    ``workers=1`` (the default) runs every job serially in-process —
    no pool, no spawn cost, byte-identical output to any pooled run of
    the same spec.  ``workers>1`` fans jobs across a spawn pool sized
    ``min(workers, len(matrix))``.  ``strict=True`` additionally
    replays every completed job in the parent process and records any
    byte mismatch — the determinism gate.
    """

    def __init__(
        self,
        matrix: RunMatrix,
        workers: int = 1,
        strict: bool = False,
        mp_context: str = "spawn",
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.matrix = matrix
        self.workers = workers
        self.strict = strict
        self._mp_context = mp_context

    def run(self) -> MatrixResult:
        jobs = self.matrix.jobs()
        # Resolve every scenario up front: a typo in the spec fails
        # here with a readable error, not inside N workers at once.
        for name in self.matrix.scenarios:
            resolve_scenario(name)
        started = perf_counter()
        outcomes: Dict[str, Tuple[str, object]] = {}
        pool_size = min(self.workers, len(jobs))
        if pool_size > 1:
            context = multiprocessing.get_context(self._mp_context)
            with context.Pool(processes=pool_size) as pool:
                for key, status, payload in pool.imap_unordered(
                    execute_job, [job.to_dict() for job in jobs]
                ):
                    outcomes[key] = (status, payload)
        else:
            for job in jobs:
                key, status, payload = execute_job(job.to_dict())
                outcomes[key] = (status, payload)

        reports: Dict[str, Dict[str, object]] = {}
        failures: Dict[str, str] = {}
        for key, (status, payload) in outcomes.items():
            if status == _OK:
                reports[key] = payload  # type: ignore[assignment]
            else:
                failures[key] = str(payload)

        mismatches: List[str] = []
        replayed = 0
        if self.strict:
            for job in jobs:
                pooled = reports.get(job.key)
                if pooled is None:
                    continue
                key, status, payload = execute_job(job.to_dict())
                replayed += 1
                if status != _OK or report_bytes(
                    payload  # type: ignore[arg-type]
                ) != report_bytes(pooled):
                    mismatches.append(job.key)

        wall = perf_counter() - started
        merged = merge_matrix_report(
            self.matrix,
            reports,
            failures=failures,
            replay_mismatches=mismatches,
        )
        return MatrixResult(
            matrix=self.matrix,
            reports=reports,
            failures=failures,
            replay_mismatches=mismatches,
            report=merged,
            workers=pool_size,
            strict=self.strict,
            wall_seconds=wall,
            replayed=replayed,
            job_order=[job.key for job in jobs],
        )


def run_matrix(
    matrix: RunMatrix,
    workers: int = 1,
    strict: bool = False,
    mp_context: str = "spawn",
) -> MatrixResult:
    """One-call convenience wrapper around :class:`MatrixOrchestrator`."""
    return MatrixOrchestrator(
        matrix, workers=workers, strict=strict, mp_context=mp_context
    ).run()
