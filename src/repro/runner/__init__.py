"""Parallel run-matrix orchestration with deterministic replay.

The runner package turns "run the chaos suite across 8 seeds and 3
fault plans" from a shell loop into a first-class object:

* :class:`RunMatrix` — the declarative spec (scenarios × plans ×
  seeds × params), JSON round-trip, deterministic job expansion;
* :class:`MatrixOrchestrator` / :func:`run_matrix` — executes the
  matrix serially or across a spawn-safe ``multiprocessing`` pool,
  with optional strict in-process replay of every job;
* :func:`merge_matrix_report` — folds per-job RunReports into one
  schema-v3 matrix report, independent of completion order;
* ``python -m repro matrix spec.json [--jobs N] [--strict]`` — the
  CLI entry point with a machine-readable verdict.

See the "Run matrix" section of docs/PERFORMANCE.md.
"""

from .merge import AGG_STATS, merge_matrix_report
from .orchestrator import (
    MatrixOrchestrator,
    MatrixResult,
    execute_job,
    report_bytes,
    run_matrix,
)
from .scenarios import SCENARIOS, resolve_scenario
from .spec import MatrixJob, RunMatrix, plan_label, seeds_from_text

__all__ = [
    "AGG_STATS",
    "MatrixJob",
    "MatrixOrchestrator",
    "MatrixResult",
    "RunMatrix",
    "SCENARIOS",
    "execute_job",
    "merge_matrix_report",
    "plan_label",
    "report_bytes",
    "resolve_scenario",
    "run_matrix",
    "seeds_from_text",
]
