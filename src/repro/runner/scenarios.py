"""Scenario registry: names a matrix spec may put in ``scenarios``.

A scenario target is any importable callable with the job signature

    target(seed: int, plan=None, **params) -> report dict

returning a full :class:`~repro.obs.RunReport` document that is a
*pure function of its arguments* — the contract strict replay checking
enforces.  Built-in names map to the fault-family harnesses; anything
else is resolved as a ``"package.module:callable"`` dotted path, so
downstream experiments plug their own scenarios into the orchestrator
without touching this module.
"""

from __future__ import annotations

import importlib
from typing import Callable, Dict

#: Built-in scenario names → dotted job targets.
SCENARIOS: Dict[str, str] = {
    "chaos": "repro.faults.chaos:chaos_job",
    "hostile": "repro.faults.hostile:hostile_job",
}


def resolve_scenario(spec: str) -> Callable:
    """A scenario name or ``module:callable`` path → the job target.

    Raises ``ValueError`` with the known names on an unknown bare name,
    ``ImportError``/``AttributeError`` on a dangling dotted path —
    at *submit* time in the parent, not inside a worker, so a typo in
    a spec file fails fast with a readable message.
    """
    target = SCENARIOS.get(spec, spec)
    if ":" not in target:
        known = ", ".join(sorted(SCENARIOS))
        raise ValueError(
            f"unknown scenario {spec!r} — want one of [{known}] or a "
            "'package.module:callable' path"
        )
    module_name, _, attribute = target.partition(":")
    module = importlib.import_module(module_name)
    fn = getattr(module, attribute)
    if not callable(fn):
        raise ValueError(f"scenario target {target!r} is not callable")
    return fn
