"""Run-matrix specs: the declarative unit of parallel evaluation.

A :class:`RunMatrix` names a cross product — scenarios × fault plans ×
seeds, plus one shared parameter dict — and expands it into an ordered
list of :class:`MatrixJob` descriptions.  Everything is plain JSON
(``to_dict``/``from_dict`` round-trip exactly), because jobs must cross
process boundaries to ``spawn`` workers and specs must live in files a
CI job can check in (``python -m repro matrix spec.json``).

Job identity is the string :attr:`MatrixJob.key`
(``scenario/plan/s<seed>``): the merge labels every metric with it, the
replay checker names mismatches by it, and — because the expansion
order is deterministic — the same spec always produces the same jobs
in the same order, whatever order workers *finish* them in.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

#: Plan specs a job may carry: the scenario default, the explicit
#: unarmed control, or an inline serialised FaultPlan dict.
PlanSpec = object  # None | "default" | "none" | Dict[str, object]


def plan_label(plan: PlanSpec, index: int) -> str:
    """The short name a plan spec contributes to job keys.

    Inline dicts are positional (``plan<index>``) since two custom
    plans have no intrinsic names; the index is their position in the
    matrix's ``plans`` list, which is part of the spec and therefore
    stable.
    """
    if plan is None or plan == "default":
        return "default"
    if plan == "none":
        return "none"
    if isinstance(plan, dict):
        return f"plan{index}"
    raise ValueError(f"unknown plan spec {plan!r}")


@dataclass(frozen=True)
class MatrixJob:
    """One (scenario, plan, seed, params) cell of a run matrix."""

    scenario: str
    seed: int
    plan: PlanSpec = None
    plan_name: str = "default"
    params: Tuple[Tuple[str, object], ...] = ()

    @property
    def key(self) -> str:
        """Deterministic job identity: ``scenario/plan/s<seed>``."""
        return f"{self.scenario}/{self.plan_name}/s{self.seed}"

    @property
    def kwargs(self) -> Dict[str, object]:
        """The scenario call's keyword arguments (params as a dict)."""
        return dict(self.params)

    def to_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "plan": self.plan,
            "plan_name": self.plan_name,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "MatrixJob":
        params = data.get("params") or {}
        if not isinstance(params, dict):
            raise ValueError("job 'params' must be an object")
        return cls(
            scenario=str(data["scenario"]),
            seed=int(data["seed"]),  # type: ignore[arg-type]
            plan=data.get("plan"),
            plan_name=str(data.get("plan_name", "default")),
            params=tuple(sorted(params.items())),
        )


@dataclass
class RunMatrix:
    """Scenarios × plans × seeds with shared params, JSON round-trip."""

    name: str
    scenarios: Sequence[str] = ("chaos",)
    seeds: Sequence[int] = (0,)
    plans: Sequence[PlanSpec] = (None,)
    params: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.scenarios = tuple(str(s) for s in self.scenarios)
        self.seeds = tuple(int(s) for s in self.seeds)
        self.plans = tuple(self.plans) if self.plans else (None,)
        if not self.scenarios:
            raise ValueError("a run matrix needs at least one scenario")
        if not self.seeds:
            raise ValueError("a run matrix needs at least one seed")
        if len(set(self.seeds)) != len(self.seeds):
            raise ValueError(f"duplicate seeds in matrix: {self.seeds}")
        # Validate plan specs eagerly (labels raise on junk) and check
        # key uniqueness — two jobs with one key would silently merge.
        labels = [
            plan_label(plan, index) for index, plan in enumerate(self.plans)
        ]
        if len(set(labels)) != len(labels):
            raise ValueError(f"duplicate plan labels in matrix: {labels}")

    def jobs(self) -> List[MatrixJob]:
        """The expansion, in deterministic scenario→plan→seed order."""
        shared = tuple(sorted(self.params.items()))
        return [
            MatrixJob(
                scenario=scenario,
                seed=seed,
                plan=plan,
                plan_name=plan_label(plan, index),
                params=shared,
            )
            for scenario in self.scenarios
            for index, plan in enumerate(self.plans)
            for seed in self.seeds
        ]

    def __len__(self) -> int:
        return len(self.scenarios) * len(self.plans) * len(self.seeds)

    def __iter__(self) -> Iterator[MatrixJob]:
        return iter(self.jobs())

    # -- (de)serialisation ---------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "scenarios": list(self.scenarios),
            "seeds": list(self.seeds),
            "plans": list(self.plans),
            "params": dict(self.params),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunMatrix":
        if not isinstance(data, dict):
            raise ValueError(
                f"matrix spec must be a JSON object, got {type(data).__name__}"
            )
        name = data.get("name")
        if not isinstance(name, str) or not name:
            raise ValueError("matrix spec needs a non-empty 'name'")
        params = data.get("params") or {}
        if not isinstance(params, dict):
            raise ValueError("matrix 'params' must be an object")
        return cls(
            name=name,
            scenarios=tuple(data.get("scenarios") or ("chaos",)),
            seeds=tuple(data.get("seeds") or (0,)),  # type: ignore[arg-type]
            plans=tuple(
                data["plans"] if data.get("plans") else (None,)
            ),
            params=dict(params),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunMatrix":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: str) -> "RunMatrix":
        with open(path) as handle:
            return cls.from_json(handle.read())

    def describe(self) -> str:
        return (
            f"matrix {self.name!r}: {len(self.scenarios)} scenario(s) x "
            f"{len(self.plans)} plan(s) x {len(self.seeds)} seed(s) = "
            f"{len(self)} job(s)"
        )


def seeds_from_text(text: str) -> Tuple[int, ...]:
    """Parse a CLI seed list: ``"0,1,5"`` or a range ``"0..7"``."""
    text = text.strip()
    if ".." in text:
        low, _, high = text.partition("..")
        start, stop = int(low), int(high)
        if stop < start:
            raise ValueError(f"empty seed range {text!r}")
        return tuple(range(start, stop + 1))
    return tuple(int(part) for part in text.split(",") if part.strip())
