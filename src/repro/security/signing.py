"""Capsule signing and verification.

Signatures cover the capsule's content digest, so any change to the
manifest or the contained units breaks verification (see
:meth:`repro.lmu.Capsule.content_digest`).
"""

from __future__ import annotations

from ..errors import SignatureInvalid, UntrustedPrincipal
from ..lmu import Capsule
from .keys import KeyPair, Signature, signing_delay, verification_delay
from .truststore import TrustStore


def sign_capsule(keypair: KeyPair, capsule: Capsule) -> float:
    """Attach ``keypair``'s signature to ``capsule``.

    Returns the modelled CPU delay (reference host) the caller should
    simulate; the middleware scales it by the signer's CPU speed.
    """
    digest = capsule.content_digest().encode("utf-8")
    capsule.signature = keypair.sign(digest)
    return signing_delay(capsule.size_bytes)


def verify_capsule(truststore: TrustStore, capsule: Capsule) -> str:
    """Check ``capsule``'s signature against ``truststore``.

    Returns the verified signer principal.  Raises:

    * :class:`SignatureInvalid` — unsigned, or the tag does not match
      the capsule's current contents (tampering);
    * :class:`UntrustedPrincipal` — the signer is not trusted here.
    """
    signature = capsule.signature
    if not isinstance(signature, Signature):
        raise SignatureInvalid(
            f"capsule #{capsule.manifest.capsule_id} carries no signature"
        )
    key = truststore.key_of(signature.signer)  # may raise UntrustedPrincipal
    digest = capsule.content_digest().encode("utf-8")
    if not key.verify(digest, signature):
        raise SignatureInvalid(
            f"signature by {signature.signer} does not match capsule "
            f"#{capsule.manifest.capsule_id} contents"
        )
    return signature.signer


def capsule_verification_delay(capsule: Capsule) -> float:
    """Modelled CPU delay (reference host) to verify ``capsule``."""
    return verification_delay(capsule.size_bytes)


__all__ = [
    "capsule_verification_delay",
    "sign_capsule",
    "verify_capsule",
    "SignatureInvalid",
    "UntrustedPrincipal",
]
