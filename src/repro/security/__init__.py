"""Security layer: keys, signatures, trust, policy, and the sandbox.

Implements the paper's security story — "digital signatures can be used
to ensure the safety and authenticity of the downloaded code" plus "a
protected environment to host mobile agents and serve REV requests" —
with simulated (HMAC-based) asymmetric signatures and a cooperative,
budgeted sandbox.
"""

from .keys import (
    SIGN_FIXED_S,
    SIGN_PER_BYTE_S,
    SIGNATURE_BYTES,
    VERIFY_FIXED_S,
    VERIFY_PER_BYTE_S,
    KeyPair,
    PublicKey,
    Signature,
    signing_delay,
    verification_delay,
)
from .policy import (
    ALL_OPERATIONS,
    CLIENT_ONLY_POLICY,
    OP_ACCEPT_AGENT,
    OP_ACCEPT_REV,
    OP_INSTALL_CODE,
    OP_SERVE_COD,
    OP_UPDATE_MIDDLEWARE,
    OPEN_POLICY,
    SIGNED_POLICY,
    SecurityPolicy,
)
from .sandbox import (
    WORK_UNITS_PER_SECOND,
    ExecutionContext,
    ExecutionResult,
    Sandbox,
)
from .signing import capsule_verification_delay, sign_capsule, verify_capsule
from .truststore import TrustStore

__all__ = [
    "ALL_OPERATIONS",
    "CLIENT_ONLY_POLICY",
    "ExecutionContext",
    "ExecutionResult",
    "KeyPair",
    "OPEN_POLICY",
    "OP_ACCEPT_AGENT",
    "OP_ACCEPT_REV",
    "OP_INSTALL_CODE",
    "OP_SERVE_COD",
    "OP_UPDATE_MIDDLEWARE",
    "PublicKey",
    "SIGNATURE_BYTES",
    "SIGNED_POLICY",
    "SIGN_FIXED_S",
    "SIGN_PER_BYTE_S",
    "Sandbox",
    "SecurityPolicy",
    "Signature",
    "TrustStore",
    "VERIFY_FIXED_S",
    "VERIFY_PER_BYTE_S",
    "WORK_UNITS_PER_SECOND",
    "capsule_verification_delay",
    "sign_capsule",
    "signing_delay",
    "verification_delay",
    "verify_capsule",
]
