"""Security layer: keys, signatures, trust, policy, and the sandbox.

Implements the paper's security story — "digital signatures can be used
to ensure the safety and authenticity of the downloaded code" plus "a
protected environment to host mobile agents and serve REV requests" —
with simulated (HMAC-based) asymmetric signatures and pluggable
sandbox providers (:mod:`repro.security.provider`) that meter guest
CPU, scratch storage, and service calls against per-principal
:class:`~repro.security.policy.QuotaGrant`\\ s.  See docs/SECURITY.md.
"""

from .keys import (
    SIGN_FIXED_S,
    SIGN_PER_BYTE_S,
    SIGNATURE_BYTES,
    VERIFY_FIXED_S,
    VERIFY_PER_BYTE_S,
    KeyPair,
    PublicKey,
    Signature,
    signing_delay,
    verification_delay,
)
from .policy import (
    ALL_OPERATIONS,
    CLIENT_ONLY_POLICY,
    OP_ACCEPT_AGENT,
    OP_ACCEPT_REV,
    OP_INSTALL_CODE,
    OP_SERVE_COD,
    OP_UPDATE_MIDDLEWARE,
    OPEN_POLICY,
    SIGNED_POLICY,
    QuotaGrant,
    SecurityPolicy,
)
from .provider import (
    ExecuteResult,
    ExecutionResult,
    InProcessProvider,
    Metrics,
    ProviderCapabilities,
    SandboxProvider,
    SessionInfo,
    StrictProvider,
)
from .sandbox import (
    WORK_UNITS_PER_SECOND,
    ExecutionContext,
    Sandbox,
)
from .signing import capsule_verification_delay, sign_capsule, verify_capsule
from .truststore import TrustStore

__all__ = [
    "ALL_OPERATIONS",
    "CLIENT_ONLY_POLICY",
    "ExecuteResult",
    "ExecutionContext",
    "ExecutionResult",
    "InProcessProvider",
    "KeyPair",
    "Metrics",
    "OPEN_POLICY",
    "OP_ACCEPT_AGENT",
    "OP_ACCEPT_REV",
    "OP_INSTALL_CODE",
    "OP_SERVE_COD",
    "OP_UPDATE_MIDDLEWARE",
    "ProviderCapabilities",
    "PublicKey",
    "QuotaGrant",
    "SIGNATURE_BYTES",
    "SIGNED_POLICY",
    "SIGN_FIXED_S",
    "SIGN_PER_BYTE_S",
    "Sandbox",
    "SandboxProvider",
    "SecurityPolicy",
    "SessionInfo",
    "Signature",
    "StrictProvider",
    "TrustStore",
    "VERIFY_FIXED_S",
    "VERIFY_PER_BYTE_S",
    "WORK_UNITS_PER_SECOND",
    "capsule_verification_delay",
    "sign_capsule",
    "signing_delay",
    "verification_delay",
    "verify_capsule",
]
