"""Security policies: what a host lets foreign code do.

The paper requires "a protected environment to host mobile agents and
serve REV requests".  The policy is the declarative half of that
protection (the :mod:`sandbox` is the mechanism): it decides whether an
operation class is allowed at all, whether the initiating principal is
acceptable, and what resource budget guest code receives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import FrozenSet, Mapping, Optional

from ..errors import PolicyViolation

#: Operation classes a policy rules on.
OP_SERVE_COD = "serve-cod"  #: answer code-on-demand fetches
OP_ACCEPT_REV = "accept-rev"  #: evaluate shipped code
OP_ACCEPT_AGENT = "accept-agent"  #: host a migrating agent
OP_INSTALL_CODE = "install-code"  #: install received units locally
OP_UPDATE_MIDDLEWARE = "update-middleware"  #: hot-swap own components

ALL_OPERATIONS = frozenset(
    {
        OP_SERVE_COD,
        OP_ACCEPT_REV,
        OP_ACCEPT_AGENT,
        OP_INSTALL_CODE,
        OP_UPDATE_MIDDLEWARE,
    }
)


@dataclass(frozen=True)
class QuotaGrant:
    """Resource quotas one principal's guest executions receive.

    The grant names the provider flavor that enforces it:
    ``"inprocess"`` meters post hoc (the cooperative default), while
    ``"strict"`` preempts deterministically at charge points.  A
    ``service_calls`` of ``None`` counts host-service lookups without
    capping them.
    """

    work_units: float = 1_000_000_000.0
    storage_bytes: int = 1_000_000
    service_calls: Optional[int] = None
    provider: str = "inprocess"


@dataclass(frozen=True)
class SecurityPolicy:
    """One host's stance towards logical mobility.

    ``require_signatures`` gates every *inbound* capsule on a valid,
    trusted signature.  ``allowed_operations`` whitelists operation
    classes.  ``allowed_principals`` (when given) further narrows who
    may initiate them — ``None`` means any *trusted* principal.
    """

    require_signatures: bool = True
    allowed_operations: FrozenSet[str] = field(default_factory=lambda: ALL_OPERATIONS)
    allowed_principals: Optional[FrozenSet[str]] = None
    #: Work-unit budget handed to one guest execution (REV body, agent
    #: step); 1e9 units is ~17 minutes of reference CPU.  See
    #: :mod:`repro.security.sandbox`.  These two scalars form the
    #: *default* :class:`QuotaGrant` when ``quota_grants`` has no entry
    #: for a principal.
    guest_work_budget: float = 1_000_000_000.0
    #: Bytes of scratch storage a guest execution may hold.
    guest_storage_bytes: int = 1_000_000
    #: Per-principal quota grants.  Keys are principal names or
    #: ``fnmatch`` globs (``"hostile:*"``, ``"task:crunch*"``); lookup
    #: prefers an exact match, then the first glob that matches in
    #: insertion order, then the default grant built from the two
    #: scalars above.
    quota_grants: Mapping[str, QuotaGrant] = field(default_factory=dict)

    def __post_init__(self) -> None:
        unknown = self.allowed_operations - ALL_OPERATIONS
        if unknown:
            raise ValueError(f"unknown operations in policy: {sorted(unknown)}")

    def check(self, operation: str, principal: Optional[str] = None) -> None:
        """Raise :class:`PolicyViolation` unless the operation is allowed."""
        if operation not in ALL_OPERATIONS:
            raise ValueError(f"unknown operation {operation!r}")
        if operation not in self.allowed_operations:
            raise PolicyViolation(f"policy forbids {operation}")
        if (
            self.allowed_principals is not None
            and principal is not None
            and principal not in self.allowed_principals
        ):
            raise PolicyViolation(
                f"policy forbids {operation} for principal {principal!r}"
            )

    def allows(self, operation: str, principal: Optional[str] = None) -> bool:
        try:
            self.check(operation, principal)
        except PolicyViolation:
            return False
        return True

    def grant_for(self, principal: str) -> QuotaGrant:
        """The :class:`QuotaGrant` this policy hands ``principal``."""
        grant = self.quota_grants.get(principal)
        if grant is not None:
            return grant
        for pattern, candidate in self.quota_grants.items():
            if fnmatchcase(principal, pattern):
                return candidate
        return QuotaGrant(
            work_units=self.guest_work_budget,
            storage_bytes=self.guest_storage_bytes,
        )


#: Accept everything from anyone, unsigned — closed-lab testing only.
OPEN_POLICY = SecurityPolicy(require_signatures=False)

#: The paper's recommended stance: everything allowed, but signed.
SIGNED_POLICY = SecurityPolicy(require_signatures=True)

#: A locked-down client: uses other people's services, hosts nothing.
CLIENT_ONLY_POLICY = SecurityPolicy(
    require_signatures=True,
    allowed_operations=frozenset({OP_INSTALL_CODE, OP_UPDATE_MIDDLEWARE}),
)
