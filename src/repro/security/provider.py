"""Pluggable sandbox providers: the guest-execution substrate.

A :class:`SandboxProvider` owns the lifecycle of guest execution on one
host: it opens a metered *session* for a principal under a
:class:`~repro.security.policy.QuotaGrant`, executes guest callables
inside that session's :class:`~repro.security.sandbox.ExecutionContext`
(never letting any guest exception class escape into the kernel), and
closes the session with a final per-run :class:`Metrics` record — work
units consumed, peak scratch bytes held, wall simulated seconds, and
service-call counts.

Two providers ship:

* :class:`InProcessProvider` — the historical flavor: budgets are
  checked *post hoc* (a charge lands, then trips the violation), which
  matches the cooperative metering the middleware has always done;
* :class:`StrictProvider` — hard quotas with **deterministic
  preemption at charge points**: a charge that would cross the quota
  never lands; the guest's metered work is clamped to exactly the
  grant, so two same-seed runs terminate a hostile guest at the same
  charge with the same tally.

Providers emit the ``security.*`` metric families with per-node
labeled children (``labels={"node": ...}``), so hostile-guest activity
shows up both per host and in fleet rollups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..errors import SandboxViolation, to_wire, WIRE_ERROR_KEY, WIRE_TYPE_KEY
from .policy import QuotaGrant
from .sandbox import WORK_UNITS_PER_SECOND, ExecutionContext


@dataclass(frozen=True)
class ProviderCapabilities:
    """What one provider flavor guarantees about its metering."""

    name: str
    #: True when quotas preempt at charge points (never overshoot).
    strict_quotas: bool
    #: True when scratch-storage bytes are metered against the grant.
    meters_storage: bool = True
    #: True when service calls are counted (and capped, given a quota).
    meters_services: bool = True
    description: str = ""


@dataclass(frozen=True)
class Metrics:
    """Resource consumption of one guest run (or one whole session)."""

    work_units: float = 0.0
    peak_storage_bytes: int = 0
    wall_sim_seconds: float = 0.0
    service_calls: int = 0


@dataclass
class SessionInfo:
    """One open guest-execution session on a provider."""

    session_id: str
    host_id: str
    principal: str
    provider: str
    context: ExecutionContext
    #: CPU speed of the hosting node, for the wall-sim-seconds figure.
    cpu_speed: float = 1.0
    opened_at: float = 0.0
    closed_at: Optional[float] = None
    executions: int = 0

    @property
    def open(self) -> bool:
        return self.closed_at is None

    def totals(self) -> Metrics:
        """Cumulative consumption across every run in this session."""
        context = self.context
        return Metrics(
            work_units=context.work_used,
            peak_storage_bytes=context.peak_storage_bytes,
            wall_sim_seconds=context.work_used
            / (WORK_UNITS_PER_SECOND * max(self.cpu_speed, 1e-9)),
            service_calls=context.service_calls,
        )


@dataclass
class ExecuteResult:
    """Outcome of one guest run under a provider.

    Failures carry the typed wire payload built by
    :func:`repro.errors.to_wire` — callers rebuild the exception with
    :func:`repro.errors.from_wire` instead of matching raw class-name
    strings.  ``work_used`` is the session context's cumulative metered
    work (the figure call sites pay as simulated CPU time), while
    ``metrics`` is this run's own delta.
    """

    ok: bool
    value: object = None
    error: Optional[str] = None
    #: Typed wire-error payload (:func:`repro.errors.to_wire` shape),
    #: None on success.
    error_wire: Optional[Dict[str, object]] = None
    work_used: float = 0.0
    metrics: Metrics = field(default_factory=Metrics)

    @property
    def error_type(self) -> Optional[str]:
        """The failed exception's registered wire-type name."""
        if self.error_wire is None:
            return None
        return str(self.error_wire.get(WIRE_TYPE_KEY)) or None

    @property
    def cpu_seconds_reference(self) -> float:
        """Simulated CPU seconds on a reference-speed host."""
        return self.work_used / WORK_UNITS_PER_SECOND


#: Backward-compatible name: the pre-provider sandbox returned an
#: ``ExecutionResult``; it is the same record.
ExecutionResult = ExecuteResult


class SandboxProvider:
    """Base provider: session lifecycle + contained guest execution.

    Subclasses set :attr:`name` / :attr:`strict` and inherit the whole
    mechanism — the strict/post-hoc distinction lives in
    :meth:`ExecutionContext.charge`, keyed off the context's ``strict``
    flag this provider sets at :meth:`open_session`.

    ``metrics`` (a :class:`~repro.sim.metrics.MetricsRegistry`, or
    None) receives the ``security.*`` families with per-node labeled
    children.
    """

    name: str = "provider"
    strict: bool = False

    def __init__(self, host_id: str, metrics: Optional[Any] = None) -> None:
        self.host_id = host_id
        self.metrics = metrics
        self._session_counter = 0
        self._m_runs = None
        self._m_violations = None
        self._m_errors = None
        self._m_work = None
        self._m_storage_peak = None
        self._m_service_calls = None
        if metrics is not None:
            labels = {"node": host_id}
            self._m_runs = metrics.counter(
                "security.sandbox_runs", labels=labels
            )
            self._m_violations = metrics.counter(
                "security.sandbox_violations", labels=labels
            )
            self._m_errors = metrics.counter(
                "security.sandbox_errors", labels=labels
            )
            self._m_work = metrics.histogram(
                "security.guest_work", labels=labels
            )
            self._m_storage_peak = metrics.histogram(
                "security.guest_storage_peak", labels=labels
            )
            self._m_service_calls = metrics.counter(
                "security.guest_service_calls", labels=labels
            )

    # -- capabilities ---------------------------------------------------------

    def capabilities(self) -> ProviderCapabilities:
        return ProviderCapabilities(
            name=self.name,
            strict_quotas=self.strict,
            description=type(self).__doc__.splitlines()[0]
            if type(self).__doc__
            else "",
        )

    # -- session lifecycle ----------------------------------------------------

    def open_session(
        self,
        principal: str,
        grant: QuotaGrant,
        services: Optional[Dict[str, Any]] = None,
        now: float = 0.0,
        cpu_speed: float = 1.0,
    ) -> SessionInfo:
        """Open a metered session for ``principal`` under ``grant``."""
        context = ExecutionContext(
            host_id=self.host_id,
            principal=principal,
            work_budget=grant.work_units,
            storage_budget_bytes=grant.storage_bytes,
            services=services,
            service_call_budget=grant.service_calls,
            strict=self.strict,
        )
        return self.session_for(context, now=now, cpu_speed=cpu_speed)

    def session_for(
        self,
        context: ExecutionContext,
        now: float = 0.0,
        cpu_speed: float = 1.0,
    ) -> SessionInfo:
        """Wrap an externally built context in a session (the adapter
        the legacy :class:`~repro.security.sandbox.Sandbox` facade and
        unit tests use)."""
        context.strict = self.strict
        self._session_counter += 1
        return SessionInfo(
            session_id=f"{self.host_id}:{self.name}:{self._session_counter}",
            host_id=self.host_id,
            principal=context.principal,
            provider=self.name,
            context=context,
            cpu_speed=cpu_speed,
            opened_at=now,
        )

    def close_session(
        self, session: SessionInfo, now: float = 0.0
    ) -> Metrics:
        """Close the session; returns its cumulative :class:`Metrics`."""
        session.closed_at = now
        totals = session.totals()
        if self.metrics is not None:
            self._m_storage_peak.observe(float(totals.peak_storage_bytes))
            if totals.service_calls:
                self._m_service_calls.increment(totals.service_calls)
        return totals

    # -- execution ------------------------------------------------------------

    def execute(
        self, session: SessionInfo, guest: Any, *args: object
    ) -> ExecuteResult:
        """Run ``guest(context, *args)`` under this session's metering.

        No guest exception class escapes into the kernel: budget
        violations and guest bugs of *any* type (``BaseException``
        included) come back as a failed :class:`ExecuteResult` whose
        ``error_wire`` carries the typed payload.
        """
        context = session.context
        session.executions += 1
        work_before = context.work_used
        calls_before = context.service_calls
        if self.metrics is not None:
            self._m_runs.increment()
        try:
            value = guest(context, *args)
        except SandboxViolation as violation:
            if self.metrics is not None:
                self._m_violations.increment()
            return self._failure(session, violation, work_before, calls_before)
        except BaseException as error:  # noqa: BLE001 - guests are untrusted
            if self.metrics is not None:
                self._m_errors.increment()
            return self._failure(session, error, work_before, calls_before)
        if self.metrics is not None:
            self._m_work.observe(context.work_used)
        return ExecuteResult(
            ok=True,
            value=value,
            work_used=context.work_used,
            metrics=self._run_metrics(session, work_before, calls_before),
        )

    # -- internals ------------------------------------------------------------

    def _run_metrics(
        self, session: SessionInfo, work_before: float, calls_before: int
    ) -> Metrics:
        context = session.context
        delta = context.work_used - work_before
        return Metrics(
            work_units=delta,
            peak_storage_bytes=context.peak_storage_bytes,
            wall_sim_seconds=delta
            / (WORK_UNITS_PER_SECOND * max(session.cpu_speed, 1e-9)),
            service_calls=context.service_calls - calls_before,
        )

    def _failure(
        self,
        session: SessionInfo,
        error: BaseException,
        work_before: float,
        calls_before: int,
    ) -> ExecuteResult:
        wire = to_wire(error)
        return ExecuteResult(
            ok=False,
            error=str(wire.get(WIRE_ERROR_KEY)),
            error_wire=wire,
            work_used=session.context.work_used,
            metrics=self._run_metrics(session, work_before, calls_before),
        )


class InProcessProvider(SandboxProvider):
    """Post-hoc metering: charges land, then trip the budget check.

    This is the historical sandbox flavor — a guest may overshoot its
    work budget by the size of its final charge before the violation
    fires, which is the right model for cooperative metering of
    trusted-but-buggy guests.
    """

    name = "inprocess"
    strict = False


class StrictProvider(SandboxProvider):
    """Hard quotas with deterministic preemption at charge points.

    A charge that would cross the work quota never lands: the guest's
    metered work is clamped to exactly the grant and the violation
    fires *at* the charge point, so the host never pays (or simulates)
    more CPU than the grant allows.  Service calls past the grant are
    refused the same way.  This is the provider hostile-guest fault
    plans run under.
    """

    name = "strict"
    strict = True
