"""Key pairs and signatures (simulated asymmetric cryptography).

The middleware behaviour under test is *accept/reject plus overhead
accounting*, not cryptographic strength, so signatures are HMAC-SHA256
tags dressed in an asymmetric API: a :class:`KeyPair` signs; the
corresponding :class:`PublicKey` verifies.  The public key keeps the
MAC secret in a private closure — honest simulation code never reads
it, and the semantics that matter hold exactly:

* verification succeeds only with the genuine signer's public key;
* any change to the signed bytes invalidates the tag;
* a verifier that does not hold (trust) the public key cannot verify.
"""

from __future__ import annotations

import hashlib
import hmac
import random
from dataclasses import dataclass
from typing import Optional

#: Modelled signature tag size on the wire, in bytes.
SIGNATURE_BYTES = 64
#: Modelled CPU cost of signing/verification: fixed + per-byte seconds
#: on the reference (speed 1.0) host.  Calibrated to 2002-era handheld
#: figures: ~10 ms fixed, ~100 ns/byte hashing.
SIGN_FIXED_S = 0.010
SIGN_PER_BYTE_S = 1.0e-7
VERIFY_FIXED_S = 0.008
VERIFY_PER_BYTE_S = 1.0e-7


@dataclass(frozen=True)
class Signature:
    """A detached signature tag naming its signer."""

    signer: str
    tag: str
    size_bytes: int = SIGNATURE_BYTES

    def __repr__(self) -> str:
        return f"<Signature by {self.signer} {self.tag[:12]}...>"


class PublicKey:
    """The verification half of a key pair."""

    def __init__(self, principal: str, secret: bytes) -> None:
        self.principal = principal
        self.__secret = secret  # name-mangled: simulation code keeps out

    def verify(self, data: bytes, signature: Signature) -> bool:
        """True when ``signature`` is this principal's tag over ``data``."""
        if signature.signer != self.principal:
            return False
        expected = hmac.new(self.__secret, data, hashlib.sha256).hexdigest()
        return hmac.compare_digest(expected, signature.tag)

    def fingerprint(self) -> str:
        """Stable short identifier for display and trust-store keys."""
        return hashlib.sha256(self.__secret).hexdigest()[:16]

    def __repr__(self) -> str:
        return f"<PublicKey {self.principal} {self.fingerprint()}>"


class KeyPair:
    """The signing half, owned by one principal."""

    def __init__(self, principal: str, secret: bytes) -> None:
        if not principal:
            raise ValueError("principal name must be non-empty")
        self.principal = principal
        self.__secret = secret
        self.public_key = PublicKey(principal, secret)

    @classmethod
    def generate(cls, principal: str, rng: random.Random) -> "KeyPair":
        """A fresh key pair, minted from the caller's seeded ``rng``.

        The rng is mandatory: an implicit ``random.Random()`` fallback
        would mint OS-entropy keys, silently breaking whole-run
        reproducibility (fingerprints, trust decisions, and capsule
        sizes would differ between same-seed runs).  Draw from a named
        world stream, e.g. ``world.streams.stream(f"keys.{principal}")``.
        """
        if rng is None:
            raise ValueError(
                "KeyPair.generate requires a seeded rng; keys minted from "
                "ambient entropy are not reproducible"
            )
        secret = bytes(rng.getrandbits(8) for _ in range(32))
        return cls(principal, secret)

    def sign(self, data: bytes) -> Signature:
        tag = hmac.new(self.__secret, data, hashlib.sha256).hexdigest()
        return Signature(signer=self.principal, tag=tag)

    def __repr__(self) -> str:
        return f"<KeyPair {self.principal}>"


def signing_delay(size_bytes: int, cpu_speed: float = 1.0) -> float:
    """Modelled CPU seconds to sign ``size_bytes`` on a host of given speed."""
    return (SIGN_FIXED_S + size_bytes * SIGN_PER_BYTE_S) / cpu_speed


def verification_delay(size_bytes: int, cpu_speed: float = 1.0) -> float:
    """Modelled CPU seconds to verify ``size_bytes`` on a host of given speed."""
    return (VERIFY_FIXED_S + size_bytes * VERIFY_PER_BYTE_S) / cpu_speed
