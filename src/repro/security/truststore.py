"""Trust stores: which principals' code a host accepts."""

from __future__ import annotations

from typing import Dict, List

from ..errors import UntrustedPrincipal
from .keys import PublicKey


class TrustStore:
    """The set of public keys one host trusts."""

    def __init__(self) -> None:
        self._keys: Dict[str, PublicKey] = {}

    def trust(self, key: PublicKey) -> None:
        """Add (or replace) the trusted key for ``key.principal``."""
        self._keys[key.principal] = key

    def revoke(self, principal: str) -> None:
        """Stop trusting ``principal`` (idempotent)."""
        self._keys.pop(principal, None)

    def trusts(self, principal: str) -> bool:
        return principal in self._keys

    def key_of(self, principal: str) -> PublicKey:
        try:
            return self._keys[principal]
        except KeyError:
            raise UntrustedPrincipal(
                f"no trusted key for principal {principal!r}"
            ) from None

    def principals(self) -> List[str]:
        return sorted(self._keys)

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, principal: str) -> bool:
        return self.trusts(principal)
