"""The sandbox: a protected, budgeted environment for guest code.

Guest code (a REV body, an agent's ``on_arrival`` step, a downloaded
unit's behaviour) runs inside an :class:`ExecutionContext` that meters
abstract *work units* and scratch storage.  Exceeding either budget
raises :class:`SandboxViolation` inside the guest; the sandbox converts
any guest exception into a structured :class:`ExecutionResult`, so a
hostile or buggy unit can never crash its host.

Work units map to simulated CPU time through the host's ``cpu_speed``
(see :data:`WORK_UNITS_PER_SECOND`); the middleware yields that delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..errors import SandboxViolation
from ..lmu.serializer import estimate_size

#: Work units one reference-speed (1.0) host executes per simulated second.
WORK_UNITS_PER_SECOND = 1_000_000.0


class ExecutionContext:
    """What guest code sees of its host: metered CPU, storage, services."""

    def __init__(
        self,
        host_id: str,
        principal: str,
        work_budget: float = 1_000_000.0,
        storage_budget_bytes: int = 1_000_000,
        services: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.host_id = host_id
        self.principal = principal
        self.work_budget = work_budget
        self.storage_budget_bytes = storage_budget_bytes
        #: Host-provided API surface (discovery, messaging hooks, ...).
        self.services: Dict[str, Any] = dict(services or {})
        self.work_used = 0.0
        self._storage: Dict[str, object] = {}

    # -- CPU metering --------------------------------------------------------

    def charge(self, work_units: float) -> None:
        """Account ``work_units`` of computation; raises on exhaustion."""
        if work_units < 0:
            raise ValueError("cannot charge negative work")
        self.work_used += work_units
        if self.work_used > self.work_budget:
            raise SandboxViolation(
                f"guest of {self.principal!r} exceeded work budget "
                f"({self.work_used:.0f} > {self.work_budget:.0f} units)"
            )

    @property
    def work_remaining(self) -> float:
        return max(0.0, self.work_budget - self.work_used)

    # -- scratch storage -------------------------------------------------------

    def store(self, key: str, value: object) -> None:
        """Put ``value`` in scratch storage, enforcing the byte budget."""
        self._storage[key] = value
        if self.storage_bytes_used > self.storage_budget_bytes:
            del self._storage[key]
            raise SandboxViolation(
                f"guest of {self.principal!r} exceeded storage budget "
                f"({self.storage_budget_bytes}B)"
            )

    def fetch(self, key: str, default: object = None) -> object:
        return self._storage.get(key, default)

    def discard(self, key: str) -> None:
        self._storage.pop(key, None)

    @property
    def storage_bytes_used(self) -> int:
        return sum(
            estimate_size(key) + estimate_size(value)
            for key, value in self._storage.items()
        )

    # -- services ------------------------------------------------------------

    def service(self, name: str) -> Any:
        """A host service by name; raises when the host offers none."""
        try:
            return self.services[name]
        except KeyError:
            raise SandboxViolation(
                f"host {self.host_id} offers no service {name!r} to guests"
            ) from None


@dataclass
class ExecutionResult:
    """Outcome of one sandboxed execution."""

    ok: bool
    value: object = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    work_used: float = 0.0

    @property
    def cpu_seconds_reference(self) -> float:
        """Simulated CPU seconds on a reference-speed host."""
        return self.work_used / WORK_UNITS_PER_SECOND


class Sandbox:
    """Runs guest callables under a context, converting failures.

    ``metrics`` (a :class:`~repro.sim.metrics.MetricsRegistry`, or
    None) receives ``security.sandbox_*`` counters and the per-guest
    work histogram, so a fleet's guest activity shows up in run
    reports.
    """

    def __init__(self, host_id: str, metrics: Optional[Any] = None) -> None:
        self.host_id = host_id
        self.metrics = metrics
        self.executions = 0
        self.violations = 0

    def run(
        self, guest: Any, context: ExecutionContext, *args: object
    ) -> ExecutionResult:
        """Execute ``guest(context, *args)`` under protection.

        Exceptions never propagate: budget violations and guest bugs
        both come back as a failed :class:`ExecutionResult` with the
        error text (the "remote traceback").
        """
        self.executions += 1
        if self.metrics is not None:
            self.metrics.counter("security.sandbox_runs").increment()
        try:
            value = guest(context, *args)
        except SandboxViolation as violation:
            self.violations += 1
            if self.metrics is not None:
                self.metrics.counter(
                    "security.sandbox_violations"
                ).increment()
            return ExecutionResult(
                ok=False,
                error=str(violation),
                error_type="SandboxViolation",
                work_used=context.work_used,
            )
        except Exception as error:  # noqa: BLE001 - guest code is untrusted
            if self.metrics is not None:
                self.metrics.counter("security.sandbox_errors").increment()
            return ExecutionResult(
                ok=False,
                error=f"{type(error).__name__}: {error}",
                error_type=type(error).__name__,
                work_used=context.work_used,
            )
        if self.metrics is not None:
            self.metrics.histogram("security.guest_work").observe(
                context.work_used
            )
        return ExecutionResult(ok=True, value=value, work_used=context.work_used)
