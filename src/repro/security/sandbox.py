"""The sandbox: a protected, budgeted environment for guest code.

Guest code (a REV body, an agent's ``on_arrival`` step, a downloaded
unit's behaviour) runs inside an :class:`ExecutionContext` that meters
abstract *work units*, scratch storage, and host service calls.
Exceeding a budget raises :class:`SandboxViolation` inside the guest;
the surrounding :class:`~repro.security.provider.SandboxProvider`
converts any guest exception into a structured
:class:`~repro.security.provider.ExecuteResult`, so a hostile or buggy
unit can never crash its host.

Two metering disciplines exist, selected by the context's ``strict``
flag (set by the owning provider): post-hoc (the historical flavor —
a charge lands, then trips the check) and strict (the charge that
would cross the quota never lands; usage is clamped to exactly the
budget, giving deterministic preemption at charge points).

Work units map to simulated CPU time through the host's ``cpu_speed``
(see :data:`WORK_UNITS_PER_SECOND`); the middleware yields that delay.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..errors import SandboxViolation
from ..lmu.serializer import estimate_size

#: Work units one reference-speed (1.0) host executes per simulated second.
WORK_UNITS_PER_SECOND = 1_000_000.0


class ExecutionContext:
    """What guest code sees of its host: metered CPU, storage, services."""

    def __init__(
        self,
        host_id: str,
        principal: str,
        work_budget: float = 1_000_000.0,
        storage_budget_bytes: int = 1_000_000,
        services: Optional[Dict[str, Any]] = None,
        service_call_budget: Optional[int] = None,
        strict: bool = False,
    ) -> None:
        self.host_id = host_id
        self.principal = principal
        self.work_budget = work_budget
        self.storage_budget_bytes = storage_budget_bytes
        #: Host-provided API surface (discovery, messaging hooks, ...).
        self.services: Dict[str, Any] = dict(services or {})
        #: None means unmetered (count only); an int is a hard cap.
        self.service_call_budget = service_call_budget
        #: Strict contexts preempt *at* the charge point; post-hoc
        #: contexts let the charge land and then trip the check.
        self.strict = strict
        self.work_used = 0.0
        self.service_calls = 0
        self.peak_storage_bytes = 0
        self._storage: Dict[str, object] = {}
        # Running byte total, maintained on store/discard so the budget
        # check is O(1) instead of re-serializing the whole scratch dict
        # on every insert.  ``_entry_bytes`` remembers each key's
        # contribution so overwrites and discards subtract exactly what
        # they added.
        self._storage_bytes = 0
        self._entry_bytes: Dict[str, int] = {}

    # -- CPU metering --------------------------------------------------------

    def charge(self, work_units: float) -> None:
        """Account ``work_units`` of computation; raises on exhaustion."""
        if work_units < 0:
            raise ValueError("cannot charge negative work")
        if self.strict and self.work_used + work_units > self.work_budget:
            # Deterministic preemption: clamp usage to exactly the
            # quota so the host never pays more CPU than the grant.
            self.work_used = self.work_budget
            raise SandboxViolation(
                f"guest of {self.principal!r} preempted at work quota "
                f"({self.work_budget:.0f} units)"
            )
        self.work_used += work_units
        if self.work_used > self.work_budget:
            raise SandboxViolation(
                f"guest of {self.principal!r} exceeded work budget "
                f"({self.work_used:.0f} > {self.work_budget:.0f} units)"
            )

    @property
    def work_remaining(self) -> float:
        return max(0.0, self.work_budget - self.work_used)

    # -- scratch storage -------------------------------------------------------

    def store(self, key: str, value: object) -> None:
        """Put ``value`` in scratch storage, enforcing the byte budget."""
        entry = estimate_size(key) + estimate_size(value)
        projected = self._storage_bytes - self._entry_bytes.get(key, 0) + entry
        if projected > self.storage_budget_bytes:
            raise SandboxViolation(
                f"guest of {self.principal!r} exceeded storage budget "
                f"({self.storage_budget_bytes}B)"
            )
        self._storage[key] = value
        self._entry_bytes[key] = entry
        self._storage_bytes = projected
        if projected > self.peak_storage_bytes:
            self.peak_storage_bytes = projected

    def fetch(self, key: str, default: object = None) -> object:
        return self._storage.get(key, default)

    def discard(self, key: str) -> None:
        if key in self._storage:
            del self._storage[key]
            self._storage_bytes -= self._entry_bytes.pop(key)

    @property
    def storage_bytes_used(self) -> int:
        return self._storage_bytes

    def storage_bytes_recomputed(self) -> int:
        """Full O(n) recomputation of the scratch byte total — the
        reference the running total is tested against."""
        return sum(
            estimate_size(key) + estimate_size(value)
            for key, value in self._storage.items()
        )

    # -- services ------------------------------------------------------------

    def service(self, name: str) -> Any:
        """A host service by name; raises when the host offers none or
        the grant's service-call quota is spent."""
        if (
            self.service_call_budget is not None
            and self.service_calls >= self.service_call_budget
        ):
            raise SandboxViolation(
                f"guest of {self.principal!r} exceeded service-call quota "
                f"({self.service_call_budget} calls)"
            )
        try:
            handle = self.services[name]
        except KeyError:
            raise SandboxViolation(
                f"host {self.host_id} offers no service {name!r} to guests"
            ) from None
        self.service_calls += 1
        return handle


class Sandbox:
    """Legacy facade: runs guest callables under a context.

    Thin adapter over :class:`~repro.security.provider.InProcessProvider`
    for call sites that manage their own :class:`ExecutionContext`.
    All accounting lives in the provider and the metrics registry
    (per-node ``security.*`` children) — the old ``executions`` /
    ``violations`` instance counters are gone.
    """

    def __init__(self, host_id: str, metrics: Optional[Any] = None) -> None:
        from .provider import InProcessProvider

        self.host_id = host_id
        self.metrics = metrics
        self._provider = InProcessProvider(host_id, metrics=metrics)

    @property
    def provider(self) -> Any:
        return self._provider

    def run(self, guest: Any, context: ExecutionContext, *args: object) -> Any:
        """Execute ``guest(context, *args)`` under protection.

        Exceptions never propagate: budget violations and guest bugs
        both come back as a failed
        :class:`~repro.security.provider.ExecuteResult` carrying the
        typed wire-error payload.
        """
        session = self._provider.session_for(context)
        try:
            return self._provider.execute(session, guest, *args)
        finally:
            self._provider.close_session(session)
