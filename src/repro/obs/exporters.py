"""Exporters: traces, spans, and metrics in machine-readable formats.

Three formats cover the usual consumers:

* **JSONL** — one JSON object per line, for traces and spans; the
  format jq/pandas ingest directly and the round-trip parsers here
  read back;
* **Prometheus text** — the registry as ``# TYPE``-annotated sample
  lines (metric names sanitised ``a.b-c`` → ``a_b_c``), so a scrape of
  a long-running simulation drops into existing dashboards;
* helpers to write either next to an experiment's other outputs.
"""

from __future__ import annotations

import json
import math
import re
from typing import Dict, Iterable, List, Mapping, Tuple

from ..sim.metrics import (
    MetricsRegistry,
    escape_label_value,
    unescape_label_value,
)
from ..sim.tracing import TraceLog, TraceRecord
from .spans import Span


def _jsonable(value: object) -> object:
    """Best-effort conversion of trace field values to JSON types."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return repr(value)


# -- traces -------------------------------------------------------------------


def trace_to_jsonl(trace: TraceLog) -> str:
    """Every retained trace record as one JSON object per line."""
    lines = []
    for record in trace:
        lines.append(
            json.dumps(
                {
                    "time": record.time,
                    "source": record.source,
                    "kind": record.kind,
                    "fields": _jsonable(record.fields),
                },
                sort_keys=True,
            )
        )
    return "\n".join(lines)


def trace_from_jsonl(text: str) -> List[TraceRecord]:
    """Parse :func:`trace_to_jsonl` output back into records."""
    records = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        data = json.loads(line)
        records.append(
            TraceRecord(
                time=float(data["time"]),
                source=str(data["source"]),
                kind=str(data["kind"]),
                fields=dict(data.get("fields") or {}),
            )
        )
    return records


# -- spans --------------------------------------------------------------------


def spans_to_jsonl(spans: Iterable[Span]) -> str:
    """Spans as one JSON object per line (see :meth:`Span.to_dict`)."""
    return "\n".join(
        json.dumps(_jsonable(span.to_dict()), sort_keys=True)
        for span in spans
    )


def spans_from_jsonl(text: str) -> List[Span]:
    """Parse :func:`spans_to_jsonl` output back into spans."""
    spans = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            spans.append(Span.from_dict(json.loads(line)))
    return spans


# -- Prometheus text format ----------------------------------------------------


def sanitize_metric_name(name: str) -> str:
    """Map registry names to the Prometheus charset ([a-zA-Z0-9_:])."""
    cleaned = [
        char if (char.isalnum() or char in "_:") else "_" for char in name
    ]
    text = "".join(cleaned)
    if text and text[0].isdigit():
        text = "_" + text
    return text


def _format_sample(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


#: A parsed sample key: (sample name, sorted (label, value) pairs).
SampleKey = Tuple[str, Tuple[Tuple[str, str], ...]]

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    # Label values are quoted with backslash escapes, so a bare "}" (or
    # "{", or a comma) inside a value must not terminate the label set.
    r'(?:\{(?P<labels>(?:[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*",?)*)\})?'
    r"\s+(?P<value>\S+)$"
)
_PROM_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _label_suffix(labels: Mapping[str, str]) -> str:
    """``{"node": "a"}`` → ``{node="a"}`` (sorted, escaped); "" if empty."""
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{escape_label_value(str(labels[key]))}"'
        for key in sorted(labels)
    )
    return "{" + inner + "}"


def _split_family(items):
    """Partition a metric store into (flat parents, children-by-family)."""
    parents = []
    children: Dict[str, list] = {}
    for name, metric in items:
        labels = getattr(metric, "labels", None)
        if labels:
            children.setdefault(metric._parent.name, []).append(metric)
        else:
            parents.append((name, metric))
    for family in children.values():
        family.sort(key=lambda child: sorted(child.labels.items()))
    return sorted(parents), children


def metrics_to_prometheus(
    registry: MetricsRegistry, prefix: str = "repro"
) -> str:
    """The registry in the Prometheus exposition text format.

    Counters and gauges become single samples; histograms expose
    ``_count``/``_sum`` plus ``quantile``-labelled samples; time series
    export their last value.  Labeled children follow their family's
    flat total as real ``{node="..."}``-labelled samples under the same
    metric name, so dashboards aggregate and slice them natively.
    """
    lines: List[str] = []

    def emit(name: str, kind: str, samples: List[str]) -> None:
        lines.append(f"# TYPE {name} {kind}")
        lines.extend(samples)

    parents, children = _split_family(registry._counters.items())
    for name, counter in parents:
        metric = f"{prefix}_{sanitize_metric_name(name)}"
        samples = [f"{metric} {_format_sample(counter.value)}"]
        for child in children.get(name, ()):
            samples.append(
                f"{metric}{_label_suffix(child.labels)} "
                f"{_format_sample(child.value)}"
            )
        emit(metric, "counter", samples)
    parents, children = _split_family(registry._gauges.items())
    for name, gauge in parents:
        metric = f"{prefix}_{sanitize_metric_name(name)}"
        family = [(gauge, "")] + [
            (child, _label_suffix(child.labels))
            for child in children.get(name, ())
        ]
        samples = []
        for member, suffix in family:
            samples.append(f"{metric}{suffix} {_format_sample(member.value)}")
            samples.append(
                f"{metric}_min{suffix} {_format_sample(member.min)}"
            )
            samples.append(
                f"{metric}_max{suffix} {_format_sample(member.max)}"
            )
        emit(metric, "gauge", samples)
    parents, children = _split_family(registry._histograms.items())
    for name, histogram in parents:
        metric = f"{prefix}_{sanitize_metric_name(name)}"
        samples = []
        for member in [histogram] + list(children.get(name, ())):
            labels = member.labels or {}
            suffix = _label_suffix(labels)
            samples.append(
                f"{metric}_count{suffix} "
                f"{_format_sample(float(member.count))}"
            )
            samples.append(
                f"{metric}_sum{suffix} {_format_sample(member.total)}"
            )
            for quantile in (0.5, 0.95, 0.99):
                merged = dict(labels)
                merged["quantile"] = str(quantile)
                samples.append(
                    f"{metric}{_label_suffix(merged)} "
                    f"{_format_sample(member.quantile(quantile))}"
                )
        emit(metric, "summary", samples)
    for name, series in sorted(registry._series.items()):
        metric = f"{prefix}_{sanitize_metric_name(name)}"
        last = series.last()
        emit(
            metric,
            "gauge",
            [f"{metric} {_format_sample(last[1] if last else 0.0)}"],
        )
    return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus(text: str) -> Dict[SampleKey, float]:
    """Parse exposition text back into ``(name, labels) -> value``.

    Keys are ``(sample name, tuple of sorted (label, value) pairs)`` —
    an unlabeled sample carries the empty tuple — so labeled samples
    survive a round trip instead of being flattened into opaque
    strings.  ``samples_to_exposition`` is the inverse.
    """
    samples: Dict[SampleKey, float] = {}
    # Split on real newlines only: str.splitlines() also breaks on
    # exotic boundaries (\x1c-\x1e,  ...) that may appear *inside*
    # label values, where only "\n" is ever escaped.
    for line in text.split("\n"):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"unparseable exposition line: {line!r}")
        labels = tuple(
            sorted(
                (pair.group(1), unescape_label_value(pair.group(2)))
                for pair in _PROM_LABEL_RE.finditer(
                    match.group("labels") or ""
                )
            )
        )
        samples[(match.group("name"), labels)] = float(match.group("value"))
    return samples


def samples_to_exposition(samples: Mapping[SampleKey, float]) -> str:
    """Render :func:`parse_prometheus` output back to sample lines
    (sorted, no ``# TYPE`` comments — the parser skips those anyway),
    completing the exposition → parse → exposition round trip."""
    lines = []
    for (name, labels), value in sorted(samples.items()):
        lines.append(
            f"{name}{_label_suffix(dict(labels))} {_format_sample(value)}"
        )
    return "\n".join(lines) + ("\n" if lines else "")


def write_text(path: str, text: str) -> str:
    """Write ``text`` (adding a trailing newline) to ``path``."""
    with open(path, "w") as handle:
        handle.write(text if text.endswith("\n") else text + "\n")
    return path
