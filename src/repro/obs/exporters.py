"""Exporters: traces, spans, and metrics in machine-readable formats.

Three formats cover the usual consumers:

* **JSONL** — one JSON object per line, for traces and spans; the
  format jq/pandas ingest directly and the round-trip parsers here
  read back;
* **Prometheus text** — the registry as ``# TYPE``-annotated sample
  lines (metric names sanitised ``a.b-c`` → ``a_b_c``), so a scrape of
  a long-running simulation drops into existing dashboards;
* helpers to write either next to an experiment's other outputs.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Iterable, List

from ..sim.metrics import MetricsRegistry
from ..sim.tracing import TraceLog, TraceRecord
from .spans import Span


def _jsonable(value: object) -> object:
    """Best-effort conversion of trace field values to JSON types."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return repr(value)


# -- traces -------------------------------------------------------------------


def trace_to_jsonl(trace: TraceLog) -> str:
    """Every retained trace record as one JSON object per line."""
    lines = []
    for record in trace:
        lines.append(
            json.dumps(
                {
                    "time": record.time,
                    "source": record.source,
                    "kind": record.kind,
                    "fields": _jsonable(record.fields),
                },
                sort_keys=True,
            )
        )
    return "\n".join(lines)


def trace_from_jsonl(text: str) -> List[TraceRecord]:
    """Parse :func:`trace_to_jsonl` output back into records."""
    records = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        data = json.loads(line)
        records.append(
            TraceRecord(
                time=float(data["time"]),
                source=str(data["source"]),
                kind=str(data["kind"]),
                fields=dict(data.get("fields") or {}),
            )
        )
    return records


# -- spans --------------------------------------------------------------------


def spans_to_jsonl(spans: Iterable[Span]) -> str:
    """Spans as one JSON object per line (see :meth:`Span.to_dict`)."""
    return "\n".join(
        json.dumps(_jsonable(span.to_dict()), sort_keys=True)
        for span in spans
    )


def spans_from_jsonl(text: str) -> List[Span]:
    """Parse :func:`spans_to_jsonl` output back into spans."""
    spans = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            spans.append(Span.from_dict(json.loads(line)))
    return spans


# -- Prometheus text format ----------------------------------------------------


def sanitize_metric_name(name: str) -> str:
    """Map registry names to the Prometheus charset ([a-zA-Z0-9_:])."""
    cleaned = [
        char if (char.isalnum() or char in "_:") else "_" for char in name
    ]
    text = "".join(cleaned)
    if text and text[0].isdigit():
        text = "_" + text
    return text


def _format_sample(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def metrics_to_prometheus(
    registry: MetricsRegistry, prefix: str = "repro"
) -> str:
    """The registry in the Prometheus exposition text format.

    Counters and gauges become single samples; histograms expose
    ``_count``/``_sum`` plus ``quantile``-labelled samples; time series
    export their last value.
    """
    lines: List[str] = []

    def emit(name: str, kind: str, samples: List[str]) -> None:
        lines.append(f"# TYPE {name} {kind}")
        lines.extend(samples)

    for name, counter in sorted(registry._counters.items()):
        metric = f"{prefix}_{sanitize_metric_name(name)}"
        emit(metric, "counter", [f"{metric} {_format_sample(counter.value)}"])
    for name, gauge in sorted(registry._gauges.items()):
        metric = f"{prefix}_{sanitize_metric_name(name)}"
        emit(
            metric,
            "gauge",
            [
                f"{metric} {_format_sample(gauge.value)}",
                f"{metric}_min {_format_sample(gauge.min)}",
                f"{metric}_max {_format_sample(gauge.max)}",
            ],
        )
    for name, histogram in sorted(registry._histograms.items()):
        metric = f"{prefix}_{sanitize_metric_name(name)}"
        samples = [
            f"{metric}_count {_format_sample(float(histogram.count))}",
            f"{metric}_sum {_format_sample(histogram.total)}",
        ]
        for quantile in (0.5, 0.95, 0.99):
            samples.append(
                f'{metric}{{quantile="{quantile}"}} '
                f"{_format_sample(histogram.quantile(quantile))}"
            )
        emit(metric, "summary", samples)
    for name, series in sorted(registry._series.items()):
        metric = f"{prefix}_{sanitize_metric_name(name)}"
        last = series.last()
        emit(
            metric,
            "gauge",
            [f"{metric} {_format_sample(last[1] if last else 0.0)}"],
        )
    return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus(text: str) -> Dict[str, float]:
    """Parse exposition text back to ``sample name -> value`` (labels
    folded into the key), for round-trip tests and quick assertions."""
    samples: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        samples[name] = float(value)
    return samples


def write_text(path: str, text: str) -> str:
    """Write ``text`` (adding a trailing newline) to ``path``."""
    with open(path, "w") as handle:
        handle.write(text if text.endswith("\n") else text + "\n")
    return path
