"""Causal trace analytics: span DAGs, hop attribution, critical paths.

The spans a :class:`~repro.obs.report.RunReport` captures are raw
material — this module turns them into answers.  Given a report's
flat span list it reconstructs the causal DAG (parent links plus the
``msg_id`` correlation attributes the transport and hosts stamp),
then attributes every simulated second of each invocation to one of
five buckets:

* **queue**   — waiting for the sender's radio channel
  (``net.transmit`` start to its ``t_air`` stamp);
* **transit** — airtime plus propagation (``t_air`` to span end) plus
  any delivery stall between the transmit span closing and the
  receiver-side ``t_deliver`` stamp (fault-injected delays land here,
  not in dead air);
* **service** — remote handler execution (``host.handle`` spans);
* **retry**   — pipeline backoff sleeps (``invoke.backoff`` spans) and
  ARQ retransmission gaps between attempts of the same message;
* **other**   — whatever remains of the invocation's wall interval
  (request/timeout waits not covered above).

Attribution is a priority sweep over the invocation root's interval —
overlapping concurrent activity is counted once, so the five buckets
always sum to the invocation's total duration.  Everything is
deterministic sim-time arithmetic: two same-seed runs produce
bit-identical analyses (span *ids* differ across runs in one process,
but no id leaks into the metrics).

Orphan spans (parent evicted from the ring or still active at capture)
become roots of partial trees and are counted, never fatal; duplicate
deliveries (the fault injector's ``duplicate`` window) are detected by
repeated ``t_deliver`` stamps for one message id and never double-count
an edge or a bucket.

The CLI front end is ``python -m repro trace`` (``summary``,
``critical-path``, ``slowest``, ``export --format chrome``); the
aggregate ``trace.*`` metrics feed :meth:`RunReport.capture
<repro.obs.report.RunReport.capture>` and the ``repro.obs.diff``
direction registry, so a regression in *where* time goes gates like a
regression in *how much*.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .spans import STATUS_OK, Span, SpanTree, build_trees

#: The five attribution buckets, in reporting order.
QUEUE = "queue"
TRANSIT = "transit"
SERVICE = "service"
RETRY = "retry"
OTHER = "other"
BUCKETS: Tuple[str, ...] = (QUEUE, TRANSIT, SERVICE, RETRY, OTHER)

#: When concurrent intervals overlap, one instant is attributed to the
#: first matching bucket in this order (retry stalls and queueing are
#: the diagnostic signals; service is what overlapping transmits of the
#: reply would otherwise hide).
_PRIORITY: Tuple[str, ...] = (RETRY, QUEUE, TRANSIT, SERVICE)

#: Root operation-span names that define one invocation, mapped to the
#: paradigm kind whose ``paradigm.<kind>.seconds`` histogram they feed.
INVOCATION_OPS: Dict[str, str] = {
    "cs.call": "cs",
    "rev.evaluate": "rev",
    "cod.fetch": "cod",
    "cod.invoke": "cod",
    "ma.invoke": "ma",
    "local.run": "local",
}

#: Relative tolerance for reconciliation checks: the arithmetic is all
#: sums of sim-time floats, so only accumulation-order noise is allowed.
RECONCILE_TOLERANCE = 1e-6


def percentile(values: Sequence[float], q: float) -> float:
    """Deterministic nearest-rank percentile (0.0 for no samples)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[rank]


@dataclass
class InvocationBreakdown:
    """One invocation's wall time, fully attributed."""

    name: str
    kind: str
    source: str
    trace_id: int
    start: float
    end: float
    status: str
    total: float
    buckets: Dict[str, float]
    span_count: int
    critical_path: List[Span] = field(repr=False, default_factory=list)

    @property
    def queue(self) -> float:
        return self.buckets[QUEUE]

    @property
    def transit(self) -> float:
        return self.buckets[TRANSIT]

    @property
    def service(self) -> float:
        return self.buckets[SERVICE]

    @property
    def retry(self) -> float:
        return self.buckets[RETRY]

    @property
    def other(self) -> float:
        return self.buckets[OTHER]

    def reconciliation_error(self) -> float:
        """|sum of buckets - total| — pure float noise when correct."""
        return abs(sum(self.buckets.values()) - self.total)

    def reconciles(self, tolerance: float = RECONCILE_TOLERANCE) -> bool:
        return self.reconciliation_error() <= tolerance * max(1.0, self.total)


def critical_path(tree: SpanTree) -> List[Span]:
    """The chain of spans that determines when the tree finishes.

    Walk from the root, at each step following the child that finishes
    last (ties broken by span id for determinism); unfinished children
    are skipped, so partial trees degrade to the finished chain.
    """
    path: List[Span] = []
    node = tree
    while True:
        path.append(node.span)
        finished = [child for child in node.children if child.span.finished]
        if not finished:
            return path
        node = max(finished, key=lambda c: (c.span.end, c.span.span_id))


def _attribute(
    start: float, end: float, intervals: List[Tuple[float, float, str]]
) -> Dict[str, float]:
    """Priority-sweep ``intervals`` over ``[start, end]`` into buckets.

    Every elementary segment of the window is attributed to exactly one
    bucket (the highest-priority label covering it, or ``other``), so
    the buckets partition the window.
    """
    buckets = {bucket: 0.0 for bucket in BUCKETS}
    if end <= start:
        return buckets
    clipped = [
        (max(left, start), min(right, end), label)
        for left, right, label in intervals
        if min(right, end) > max(left, start)
    ]
    points = sorted(
        {start, end}
        | {left for left, _right, _label in clipped}
        | {right for _left, right, _label in clipped}
    )
    for left, right in zip(points, points[1:]):
        covering = {
            label
            for ileft, iright, label in clipped
            if ileft <= left and iright >= right
        }
        for label in _PRIORITY:
            if label in covering:
                buckets[label] += right - left
                break
        else:
            buckets[OTHER] += right - left
    return buckets


class TraceAnalysis:
    """The reconstructed span DAG of one run, with hop attribution."""

    def __init__(self, spans: Sequence[Span]) -> None:
        finished = [span for span in spans if span.finished]
        self.spans = finished
        self.unfinished = len(spans) - len(finished)
        known = {span.span_id for span in finished}
        self.orphans = sum(
            1
            for span in finished
            if span.parent_id is not None and span.parent_id not in known
        )
        self.trees: List[SpanTree] = build_trees(finished)
        # Message correlation: transmits and receiver delivery stamps,
        # keyed by the ``msg_id`` the transport/hosts stamp per hop.
        self._transmits: Dict[int, List[Span]] = {}
        self._deliveries: Dict[int, List[float]] = {}
        for span in finished:
            msg_id = span.attributes.get("msg_id")
            if msg_id is None:
                continue
            msg_id = int(msg_id)  # type: ignore[arg-type]
            if span.name == "net.transmit":
                self._transmits.setdefault(msg_id, []).append(span)
            elif span.name in ("host.handle", "host.deliver"):
                stamp = span.attributes.get("t_deliver")
                if stamp:
                    self._deliveries.setdefault(msg_id, []).append(
                        float(stamp)  # type: ignore[arg-type]
                    )
        for group in self._transmits.values():
            group.sort(key=lambda span: (span.start, span.span_id))
        for stamps in self._deliveries.values():
            stamps.sort()
        self.duplicate_deliveries = sum(
            len(stamps) - 1 for stamps in self._deliveries.values()
        )
        self.invocations: List[InvocationBreakdown] = []
        self.background: List[SpanTree] = []
        for tree in self.trees:
            root = tree.span
            if root.parent_id is None and root.name in INVOCATION_OPS:
                self.invocations.append(self._breakdown(tree))
            else:
                self.background.append(tree)

    # -- construction --------------------------------------------------------

    @classmethod
    def from_spans(
        cls, span_dicts: Iterable[Mapping[str, object]]
    ) -> "TraceAnalysis":
        """Build from the flat dict spans a report document carries."""
        return cls([Span.from_dict(dict(data)) for data in span_dicts])

    @classmethod
    def from_report(cls, report: object) -> "TraceAnalysis":
        """Build from a :class:`RunReport` instance or report dict."""
        if hasattr(report, "spans"):
            spans = report.spans  # type: ignore[union-attr]
        else:
            spans = report.get("spans") or []  # type: ignore[union-attr]
        return cls.from_spans(spans)

    # -- per-invocation attribution ------------------------------------------

    def _delivery_after(self, msg_id: int, when: float) -> Optional[float]:
        """The first receiver delivery stamp at or after ``when``."""
        stamps = self._deliveries.get(msg_id)
        if not stamps:
            return None
        index = bisect_left(stamps, when)
        return stamps[index] if index < len(stamps) else None

    def _breakdown(self, tree: SpanTree) -> InvocationBreakdown:
        root = tree.span
        intervals: List[Tuple[float, float, str]] = []
        transmit_groups: Dict[int, List[Span]] = {}
        span_count = 0
        for _depth, span in tree.walk():
            span_count += 1
            if not span.finished:
                continue
            if span.name == "net.transmit":
                attrs = span.attributes
                t_air = float(attrs.get("t_air", span.start))  # type: ignore[arg-type]
                intervals.append((span.start, t_air, QUEUE))
                intervals.append((t_air, span.end, TRANSIT))  # type: ignore[arg-type]
                msg_id = attrs.get("msg_id")
                if msg_id is not None:
                    msg_id = int(msg_id)  # type: ignore[arg-type]
                    transmit_groups.setdefault(msg_id, []).append(span)
                    delivered = self._delivery_after(msg_id, span.end)
                    if delivered is not None and delivered > span.end:
                        # The copy left the air but reached the inbox
                        # later: an injected (or relayed) delivery
                        # stall, attributed to transit.
                        intervals.append((span.end, delivered, TRANSIT))
            elif span.name == "net.broadcast":
                intervals.append((span.start, span.end, TRANSIT))  # type: ignore[arg-type]
            elif span.name == "invoke.backoff":
                intervals.append((span.start, span.end, RETRY))  # type: ignore[arg-type]
            elif span.name == "host.handle":
                intervals.append((span.start, span.end, SERVICE))  # type: ignore[arg-type]
        # ARQ retransmissions: the wait between one attempt's end and
        # the next attempt's start for the same message id is a retry
        # stall (link-layer), same bucket as pipeline backoff.
        for group in transmit_groups.values():
            for previous, current in zip(group, group[1:]):
                if current.start > previous.end:  # type: ignore[operator]
                    intervals.append((previous.end, current.start, RETRY))  # type: ignore[arg-type]
        buckets = _attribute(root.start, root.end, intervals)  # type: ignore[arg-type]
        return InvocationBreakdown(
            name=root.name,
            kind=INVOCATION_OPS[root.name],
            source=root.source,
            trace_id=root.trace_id,
            start=root.start,
            end=root.end,  # type: ignore[arg-type]
            status=root.status,
            total=root.duration,
            buckets=buckets,
            span_count=span_count,
            critical_path=critical_path(tree),
        )

    # -- aggregates ----------------------------------------------------------

    def bucket_totals(self) -> Dict[str, float]:
        totals = {bucket: 0.0 for bucket in BUCKETS}
        for invocation in self.invocations:
            for bucket in BUCKETS:
                totals[bucket] += invocation.buckets[bucket]
        return totals

    def metrics(self) -> Dict[str, float]:
        """The gateable ``trace.*`` metric family (id-free, so two
        same-seed runs produce bit-identical values)."""
        durations = [invocation.total for invocation in self.invocations]
        totals = self.bucket_totals()
        grand = sum(durations)
        metrics: Dict[str, float] = {
            "trace.spans": float(len(self.spans)),
            "trace.trees": float(len(self.trees)),
            "trace.invocations": float(len(self.invocations)),
            "trace.orphans": float(self.orphans),
            "trace.unfinished": float(self.unfinished),
            "trace.duplicate_deliveries": float(self.duplicate_deliveries),
            "trace.critical_path.p50": percentile(durations, 0.50),
            "trace.critical_path.p99": percentile(durations, 0.99),
            "trace.critical_path.max": max(durations) if durations else 0.0,
        }
        for bucket in BUCKETS:
            metrics[f"trace.{bucket}_seconds"] = totals[bucket]
            metrics[f"trace.{bucket}_share"] = (
                totals[bucket] / grand if grand else 0.0
            )
        return metrics

    def slowest(self, count: int = 10) -> List[InvocationBreakdown]:
        """The ``count`` slowest invocations (ties broken by start)."""
        ranked = sorted(
            self.invocations,
            key=lambda inv: (-inv.total, inv.start, inv.trace_id),
        )
        return ranked[: max(0, count)]

    # -- verification --------------------------------------------------------

    def problems(
        self, metrics: Optional[Mapping[str, float]] = None
    ) -> List[str]:
        """Internal-consistency failures (empty list means healthy).

        Checks that every invocation's buckets sum back to its wall
        duration, and — when a report's ``metrics`` section is given —
        that per-paradigm invocation totals reconcile with the
        ``paradigm.<kind>.seconds`` histograms the pipeline recorded
        independently.
        """
        found: List[str] = []
        for invocation in self.invocations:
            if not invocation.reconciles():
                found.append(
                    f"{invocation.name} trace {invocation.trace_id}: buckets "
                    f"sum to {sum(invocation.buckets.values()):.9f}s but the "
                    f"invocation took {invocation.total:.9f}s"
                )
        if self.spans and not self.trees:
            found.append("no span could be placed in any tree")
        if metrics:
            # The pipeline observes ``paradigm.<kind>.seconds`` only on
            # success — failed invocations have root spans but no
            # histogram sample, so reconcile against the ok subset.
            by_kind: Dict[str, List[InvocationBreakdown]] = {}
            for invocation in self.invocations:
                if invocation.status == STATUS_OK:
                    by_kind.setdefault(invocation.kind, []).append(invocation)
            for kind, invocations in sorted(by_kind.items()):
                count_key = f"paradigm.{kind}.seconds.count"
                expected_count = metrics.get(count_key)
                if expected_count is None:
                    continue
                if int(expected_count) != len(invocations):
                    found.append(
                        f"paradigm.{kind}: {len(invocations)} invocation "
                        f"root span(s) vs {int(expected_count)} histogram "
                        "observations (span ring evicted, or spans were "
                        "enabled mid-run)"
                    )
                    continue
                expected = metrics.get(f"paradigm.{kind}.seconds.sum")
                if expected is None:
                    mean = metrics.get(f"paradigm.{kind}.seconds.mean", 0.0)
                    expected = mean * expected_count
                got = sum(invocation.total for invocation in invocations)
                if abs(got - expected) > RECONCILE_TOLERANCE * max(
                    1.0, expected
                ):
                    found.append(
                        f"paradigm.{kind}: invocation spans sum to "
                        f"{got:.9f}s but paradigm.{kind}.seconds recorded "
                        f"{expected:.9f}s"
                    )
        return found

    # -- rendering -----------------------------------------------------------

    def render_summary(self) -> str:
        """Human-readable per-kind breakdown tables."""
        from ..analysis.tables import render_table

        parts = [
            f"trace analysis — {len(self.spans)} spans in "
            f"{len(self.trees)} trees; {len(self.invocations)} "
            f"invocation(s), {len(self.background)} background tree(s), "
            f"{self.orphans} orphan(s), "
            f"{self.duplicate_deliveries} duplicate deliveries"
        ]
        by_kind: Dict[str, List[InvocationBreakdown]] = {}
        for invocation in self.invocations:
            by_kind.setdefault(invocation.kind, []).append(invocation)
        rows = []
        for kind, invocations in sorted(by_kind.items()):
            total = sum(inv.total for inv in invocations)
            rows.append(
                [
                    kind,
                    len(invocations),
                    f"{total:.6f}",
                    *(
                        f"{sum(inv.buckets[bucket] for inv in invocations):.6f}"
                        for bucket in BUCKETS
                    ),
                ]
            )
        parts.append(
            render_table(
                "per-paradigm latency attribution (seconds)",
                ["kind", "n", "total", *BUCKETS],
                rows,
            )
        )
        metric_rows = [
            [name, f"{value:g}"]
            for name, value in sorted(self.metrics().items())
        ]
        parts.append(
            render_table("trace metrics", ["metric", "value"], metric_rows)
        )
        return "\n\n".join(parts)

    def render_critical_path(self, top: int = 3) -> str:
        """The critical path of the ``top`` slowest invocations."""
        if not self.invocations:
            return "no invocations to profile (report has no operation spans)"
        parts = []
        for invocation in self.slowest(top):
            parts.append(
                f"{invocation.name} [{invocation.source}] "
                f"{invocation.total * 1000:.3f}ms total — "
                f"queue {invocation.queue * 1000:.3f} / transit "
                f"{invocation.transit * 1000:.3f} / service "
                f"{invocation.service * 1000:.3f} / retry "
                f"{invocation.retry * 1000:.3f} / other "
                f"{invocation.other * 1000:.3f}"
            )
            for depth, span in enumerate(invocation.critical_path):
                indent = "  " * (depth + 1)
                parts.append(
                    f"{indent}{span.name} [{span.source}] "
                    f"{span.start:.6f}→{span.end:.6f} "
                    f"({span.duration * 1000:.3f}ms)"
                )
        return "\n".join(parts)

    def render_slowest(self, count: int = 10) -> str:
        from ..analysis.tables import render_table

        rows = [
            [
                invocation.name,
                invocation.source,
                invocation.status,
                f"{invocation.total * 1000:.3f}",
                *(
                    f"{invocation.buckets[bucket] * 1000:.3f}"
                    for bucket in BUCKETS
                ),
            ]
            for invocation in self.slowest(count)
        ]
        return render_table(
            f"slowest invocations (ms, top {len(rows)})",
            ["op", "host", "status", "total", *BUCKETS],
            rows,
        )

    # -- export --------------------------------------------------------------

    def to_chrome(self) -> Dict[str, object]:
        """A chrome://tracing / Perfetto-loadable trace document.

        One "process" per span source (host id), one "thread" per trace
        id; spans become complete (``ph: "X"``) events with sim-time
        microsecond timestamps.  Ordering is deterministic.
        """
        sources = sorted({span.source for span in self.spans})
        pids = {source: index + 1 for index, source in enumerate(sources)}
        events: List[Dict[str, object]] = []
        for source in sources:
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pids[source],
                    "tid": 0,
                    "args": {"name": source},
                }
            )
        for span in sorted(
            self.spans, key=lambda span: (span.start, span.span_id)
        ):
            args: Dict[str, object] = {
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "status": span.status,
            }
            args.update(span.attributes)
            events.append(
                {
                    "ph": "X",
                    "name": span.name,
                    "cat": span.name.split(".", 1)[0],
                    "ts": span.start * 1e6,
                    "dur": span.duration * 1e6,
                    "pid": pids[span.source],
                    "tid": span.trace_id,
                    "args": args,
                }
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "source": "repro.obs.trace",
                "spans": len(self.spans),
                "orphans": self.orphans,
            },
        }
