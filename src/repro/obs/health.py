"""In-run fleet health: per-node SLO monitors and a breach flight recorder.

End-of-run snapshots answer "how did the run go"; this module answers
"which node is going bad *right now*" while the simulation is still in
flight.  Three pieces:

* :class:`SloSpec` — a declarative per-node service-level objective
  over labeled metric families: a numerator family, an optional
  denominator family (rate vs. ratio), an optional sliding sim-time
  window, and strict ``degraded``/``critical`` thresholds with an
  ``above``/``below`` direction.
* :class:`HealthEngine` — piggybacks on the
  :class:`~repro.obs.timeseries.TimeSeriesRecorder` cadence: each sweep
  it evaluates every spec against every labeled child of the referenced
  families and tracks a per-(spec, node) level.  Level *transitions*
  are recorded as deterministic sim-time breach events; worsening
  transitions additionally bump ``health.breaches{node=...}`` (and
  ``health.critical_breaches`` at critical), open a ``health.breach``
  span, and trigger a flight-recorder dump.  An armed engine whose
  SLOs never breach touches nothing — same-seed runs with and without
  it produce bit-identical reports.
* :class:`FlightRecorder` — a per-source ring buffer fed from
  :meth:`TraceLog.emit` even when tracing is disabled, so the last-N
  events of a misbehaving node (plus the fault injector's timeline)
  travel inside the RunReport next to the breach that exposed them.

Everything is keyed on simulated time and evaluated in sorted order,
so health output is as deterministic as the run itself.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Mapping, Optional, Tuple

from ..sim.metrics import MetricsRegistry

#: Health levels, worst last; indices order comparisons.
LEVELS = ("ok", "degraded", "critical")

_LEVEL_INDEX = {level: index for index, level in enumerate(LEVELS)}


def worst_level(levels) -> str:
    """The most severe of an iterable of level names ("ok" if empty)."""
    worst = 0
    for level in levels:
        index = _LEVEL_INDEX[level]
        if index > worst:
            worst = index
    return LEVELS[worst]


@dataclass(frozen=True)
class SloSpec:
    """One per-node service-level objective over labeled families.

    The monitored value is ``numerator / denominator`` when a
    denominator family is given (a ratio — e.g. retries per call) and
    the bare numerator otherwise (a count — e.g. stale replies).  With
    ``window_s`` set, both sides are *deltas* over the trailing window
    of sim-time; ``None`` means cumulative since the start of the run.

    Thresholds compare **strictly** (``value > degraded`` for
    ``comparison="above"``, ``value < degraded`` for ``"below"``), so a
    value sitting exactly on a threshold does not breach — a
    ``degraded=0.0`` "above" spec fires on any positive value and stays
    quiet at zero.  ``critical=None`` disables the critical level.
    Ratio specs stay ``ok`` until the window's denominator reaches
    ``min_denominator`` (no verdicts from one-sample noise).
    """

    name: str
    numerator: str
    denominator: Optional[str] = None
    window_s: Optional[float] = None
    degraded: float = 0.0
    critical: Optional[float] = None
    comparison: str = "above"
    min_denominator: float = 1.0
    description: str = ""

    def __post_init__(self) -> None:
        if self.comparison not in ("above", "below"):
            raise ValueError(
                f"slo {self.name!r}: comparison must be 'above' or "
                f"'below', got {self.comparison!r}"
            )
        if self.window_s is not None and self.window_s <= 0:
            raise ValueError(f"slo {self.name!r}: window_s must be positive")
        if self.critical is not None:
            if self.comparison == "above" and self.critical < self.degraded:
                raise ValueError(
                    f"slo {self.name!r}: critical below degraded"
                )
            if self.comparison == "below" and self.critical > self.degraded:
                raise ValueError(
                    f"slo {self.name!r}: critical above degraded"
                )

    def level(self, value: float) -> str:
        """Classify a monitored value (strict threshold comparisons)."""
        if self.comparison == "above":
            if self.critical is not None and value > self.critical:
                return "critical"
            return "degraded" if value > self.degraded else "ok"
        if self.critical is not None and value < self.critical:
            return "critical"
        return "degraded" if value < self.degraded else "ok"

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "numerator": self.numerator,
            "denominator": self.denominator,
            "window_s": self.window_s,
            "degraded": self.degraded,
            "critical": self.critical,
            "comparison": self.comparison,
            "min_denominator": self.min_denominator,
            "description": self.description,
        }


class FlightRecorder:
    """Bounded per-source ring buffers of recent trace events.

    Plugged into :class:`~repro.sim.tracing.TraceLog` (``trace.flight``)
    the recorder sees every emitted event *before* the log's enabled
    check, so last-N context is available even on runs that keep
    tracing off.  Each source keeps its own ``deque(maxlen=capacity)``;
    at most ``max_sources`` distinct sources are tracked (later ones
    are dropped — bounded memory beats complete coverage here).
    """

    def __init__(self, capacity: int = 64, max_sources: int = 256) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if max_sources < 1:
            raise ValueError("max_sources must be >= 1")
        self.capacity = capacity
        self.max_sources = max_sources
        self._rings: Dict[str, Deque[Tuple[float, str, dict]]] = {}
        self.dropped_sources = 0

    def record(self, time: float, source: str, kind: str, fields: dict) -> None:
        ring = self._rings.get(source)
        if ring is None:
            if len(self._rings) >= self.max_sources:
                self.dropped_sources += 1
                return
            ring = self._rings[source] = deque(maxlen=self.capacity)
        ring.append((time, kind, fields))

    def sources(self) -> List[str]:
        return sorted(self._rings)

    def snapshot(self, source: str) -> List[Dict[str, object]]:
        """The retained events of one source, JSON-ready, oldest first."""
        ring = self._rings.get(source)
        if not ring:
            return []
        return [
            {
                "time": time,
                "kind": kind,
                "fields": _jsonable_fields(fields),
            }
            for time, kind, fields in ring
        ]


def _jsonable_fields(fields: Mapping) -> Dict[str, object]:
    out: Dict[str, object] = {}
    for key, value in fields.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[str(key)] = value
        else:
            out[str(key)] = repr(value)
    return out


@dataclass
class _SeriesWindow:
    """Trailing-window bookkeeping for one (spec, node, side) series.

    Points are ``(time, cumulative value)``; the delta over the window
    is ``latest - baseline`` where the baseline is the newest point at
    or before the cutoff.  A window that still covers the start of the
    run uses the implicit ``(0, 0.0)`` origin — counters start at zero.
    """

    points: Deque[Tuple[float, float]] = field(default_factory=deque)

    def delta(self, now: float, value: float, window_s: float) -> float:
        points = self.points
        points.append((now, value))
        cutoff = now - window_s
        while len(points) >= 2 and points[1][0] <= cutoff:
            points.popleft()
        baseline = points[0][1] if points[0][0] <= cutoff else 0.0
        return value - baseline


class HealthEngine:
    """Evaluates :class:`SloSpec`s per node on the sampling cadence.

    ``evaluate(now)`` is called by the attached
    :class:`~repro.obs.timeseries.TimeSeriesRecorder` at the end of
    every sweep.  It only *reads* the registry (via
    ``labeled_children`` — no metric is ever created by evaluation), so
    an armed engine with quiet SLOs leaves the run bit-identical to an
    unarmed one; the ``health.*`` counters and spans appear on the
    first worsening transition only.
    """

    def __init__(
        self,
        metrics: MetricsRegistry,
        slos,
        tracer=None,
        flight: Optional[FlightRecorder] = None,
        label: str = "node",
        max_events: int = 256,
        max_flight_dumps: int = 16,
    ) -> None:
        self.metrics = metrics
        self.slos: Tuple[SloSpec, ...] = tuple(slos)
        names = [slo.name for slo in self.slos]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate slo names: {names}")
        self.tracer = tracer
        self.flight = flight
        self.label = label
        self.max_events = max_events
        self.max_flight_dumps = max_flight_dumps
        #: (slo name, node) -> current level name.
        self._levels: Dict[Tuple[str, str], str] = {}
        self._windows: Dict[Tuple[str, str, str], _SeriesWindow] = {}
        self.events: List[Dict[str, object]] = []
        self.dropped_events = 0
        #: node -> flight dump captured at its first worsening breach.
        self.flight_dumps: Dict[str, Dict[str, object]] = {}
        self.evaluations = 0

    # -- evaluation ----------------------------------------------------------

    def evaluate(self, now: float) -> None:
        """One sweep: classify every (spec, node) and record transitions."""
        self.evaluations += 1
        for slo in self.slos:
            numerators = self.metrics.labeled_children(
                slo.numerator, self.label
            )
            denominators = (
                self.metrics.labeled_children(slo.denominator, self.label)
                if slo.denominator is not None
                else None
            )
            nodes = set(numerators)
            if denominators is not None:
                nodes.update(denominators)
            for node in sorted(nodes):
                value = self._value(slo, node, now, numerators, denominators)
                if value is None:
                    continue
                level = slo.level(value)
                key = (slo.name, node)
                previous = self._levels.get(key, "ok")
                if level != previous:
                    self._levels[key] = level
                    self._transition(now, slo, node, previous, level, value)

    def _value(self, slo, node, now, numerators, denominators):
        numerator = _scalar(numerators.get(node))
        if slo.window_s is not None:
            numerator = self._window(
                slo.name, node, "num", now, numerator, slo.window_s
            )
        if denominators is None:
            return numerator
        denominator = _scalar(denominators.get(node))
        if slo.window_s is not None:
            denominator = self._window(
                slo.name, node, "den", now, denominator, slo.window_s
            )
        if denominator < slo.min_denominator:
            return None
        return numerator / denominator

    def _window(self, slo_name, node, side, now, value, window_s):
        key = (slo_name, node, side)
        window = self._windows.get(key)
        if window is None:
            window = self._windows[key] = _SeriesWindow()
        return window.delta(now, value, window_s)

    # -- transitions ---------------------------------------------------------

    def _transition(self, now, slo, node, previous, level, value) -> None:
        if len(self.events) < self.max_events:
            self.events.append(
                {
                    "time": now,
                    "slo": slo.name,
                    "node": node,
                    "from": previous,
                    "to": level,
                    "value": value,
                }
            )
        else:
            self.dropped_events += 1
        if _LEVEL_INDEX[level] <= _LEVEL_INDEX[previous]:
            return  # recovery: recorded above, but never instrumented
        self.metrics.counter(
            "health.breaches", labels={self.label: node}
        ).increment()
        if level == "critical":
            self.metrics.counter(
                "health.critical_breaches", labels={self.label: node}
            ).increment()
        if self.tracer is not None:
            span = self.tracer.start(
                "health.breach",
                node,
                slo=slo.name,
                level=level,
                value=value,
            )
            self.tracer.finish(
                span, status="error" if level == "critical" else "ok"
            )
        if (
            self.flight is not None
            and node not in self.flight_dumps
            and len(self.flight_dumps) < self.max_flight_dumps
        ):
            self.flight_dumps[node] = {
                "time": now,
                "slo": slo.name,
                "level": level,
                "value": value,
                "events": self.flight.snapshot(node),
                "faults": self.flight.snapshot("faults"),
            }

    # -- inspection ----------------------------------------------------------

    def node_states(self) -> Dict[str, str]:
        """``node -> worst current level`` across every spec."""
        states: Dict[str, List[str]] = {}
        for (_slo, node), level in self._levels.items():
            states.setdefault(node, []).append(level)
        return {node: worst_level(states[node]) for node in sorted(states)}

    def verdicts(self) -> Dict[str, Dict[str, str]]:
        """``slo -> node -> final level`` for every evaluated pair."""
        verdicts: Dict[str, Dict[str, str]] = {}
        for (slo, node), level in sorted(self._levels.items()):
            verdicts.setdefault(slo, {})[node] = level
        return verdicts

    @property
    def breached(self) -> bool:
        return bool(self.events)

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready form: the ``health`` section of a RunReport."""
        return {
            "slos": [slo.as_dict() for slo in self.slos],
            "states": self.node_states(),
            "verdicts": self.verdicts(),
            "events": list(self.events),
            "dropped_events": self.dropped_events,
            "evaluations": self.evaluations,
        }


def _scalar(metric) -> float:
    """The monitored scalar of a metric child (0.0 for an absent one)."""
    if metric is None:
        return 0.0
    value = getattr(metric, "value", None)
    if value is not None:
        return value
    return float(metric.observed)
