"""Crash- and concurrency-safe file primitives for run artifacts.

Two failure modes matter once runs fan out across worker processes
(:mod:`repro.runner`):

* a worker killed mid-write must never leave a *truncated* report JSON
  behind — :func:`atomic_write_text` stages the document in a sibling
  temp file and publishes it with ``os.replace``, so readers only ever
  see the old or the new complete document;
* concurrent appenders must never *interleave* partial lines in a
  shared JSONL log — :func:`locked_append_line` issues each record as
  a single ``O_APPEND`` write under an ``fcntl`` exclusive lock, so
  ``trajectory.jsonl`` stays one well-formed JSON document per line no
  matter how many processes append at once.

:func:`read_jsonl` is the matching tolerant reader: a torn or corrupt
line (from a pre-fix writer, or a crash between lock and write) is
skipped and counted, never fatal, so one bad record cannot take down
the whole perf history.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, List, Tuple

try:  # POSIX only; on other platforms appends fall back to O_APPEND alone.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None  # type: ignore[assignment]


def atomic_write_text(path: str, text: str) -> str:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    The temp file lands in the destination directory so the final
    rename never crosses a filesystem boundary; on any error the temp
    file is removed and nothing at ``path`` changes.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    handle = tempfile.NamedTemporaryFile(
        mode="w",
        dir=directory,
        prefix=os.path.basename(path) + ".",
        suffix=".tmp",
        delete=False,
    )
    try:
        with handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(handle.name, path)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise
    return path


def locked_append_line(path: str, line: str) -> str:
    """Append ``line`` (newline added) to ``path`` as one atomic record.

    The record is encoded first and issued as a *single* ``os.write``
    on an ``O_APPEND`` descriptor, under an ``fcntl`` exclusive lock
    where available — concurrent appenders serialise instead of
    interleaving bytes mid-line.
    """
    if "\n" in line:
        raise ValueError("JSONL records must be single lines")
    payload = (line + "\n").encode("utf-8")
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        if fcntl is not None:
            fcntl.flock(fd, fcntl.LOCK_EX)
        try:
            remaining = payload
            while remaining:
                remaining = remaining[os.write(fd, remaining):]
        finally:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_UN)
    finally:
        os.close(fd)
    return path


def append_jsonl(path: str, entry: Dict[str, object]) -> str:
    """Append one dict to a JSONL log via :func:`locked_append_line`."""
    return locked_append_line(path, json.dumps(entry, sort_keys=True))


def read_jsonl(
    path: str, strict: bool = False
) -> Tuple[List[Dict[str, object]], int]:
    """Read a JSONL log, tolerating torn or corrupt lines.

    Returns ``(entries, skipped)`` where ``skipped`` counts unreadable
    lines (truncated tail from a killed writer, interleaved bytes from
    a pre-lock appender, stray garbage).  ``strict=True`` raises
    ``ValueError`` on the first bad line instead — what a gate uses
    when corruption itself must fail the run.
    """
    entries: List[Dict[str, object]] = []
    skipped = 0
    with open(path, encoding="utf-8", errors="replace") as handle:
        for number, raw in enumerate(handle, start=1):
            text = raw.strip()
            if not text:
                continue
            try:
                entry = json.loads(text)
            except json.JSONDecodeError as error:
                if strict:
                    raise ValueError(
                        f"{path}:{number}: malformed JSONL line: {error}"
                    )
                skipped += 1
                continue
            if not isinstance(entry, dict):
                if strict:
                    raise ValueError(
                        f"{path}:{number}: JSONL record is not an object"
                    )
                skipped += 1
                continue
            entries.append(entry)
    return entries, skipped


def read_jsonl_if_exists(
    path: str, strict: bool = False
) -> Tuple[List[Dict[str, object]], int]:
    """Like :func:`read_jsonl` but a missing file is just ``([], 0)``."""
    if not os.path.isfile(path):
        return [], 0
    return read_jsonl(path, strict=strict)
