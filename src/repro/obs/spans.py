"""Causal spans: follow one operation across hosts and the network.

A :class:`Span` is a named interval of simulated time with a parent,
forming trees that explain *why* something happened: one REV request
produces a tree ``rev.evaluate -> host.request -> net.transmit`` on the
client plus a remote ``host.handle`` branch on the server.  Span
context crosses the network inside :class:`~repro.net.message.Message`
objects (the ``trace_context`` field), so causality survives host
boundaries exactly like real distributed tracing headers do.

The tracer is layered on :class:`~repro.sim.tracing.TraceLog`: every
finished span is mirrored into the trace log (kind ``span``), so the
existing filtering and rendering tools see spans too.  Disabled tracers
hand out a shared no-op span and do no bookkeeping, keeping the
instrumented hot paths cheap.
"""

from __future__ import annotations

import itertools
from collections import deque
from contextlib import contextmanager
from typing import (
    Callable,
    Deque,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from ..sim.tracing import TraceLog

#: Status a finished span may carry.
STATUS_OK = "ok"
STATUS_ERROR = "error"


class Span:
    """One named interval of simulated time within a trace tree."""

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "source",
        "start",
        "end",
        "status",
        "attributes",
    )

    def __init__(
        self,
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        source: str,
        start: float,
        attributes: Optional[Dict[str, object]] = None,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.source = source
        self.start = start
        self.end: Optional[float] = None
        self.status: str = STATUS_OK
        self.attributes: Dict[str, object] = attributes or {}

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Simulated seconds from start to end (0.0 while unfinished)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serialisable flat representation."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "source": self.source,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Span":
        span = cls(
            trace_id=int(data["trace_id"]),  # type: ignore[arg-type]
            span_id=int(data["span_id"]),  # type: ignore[arg-type]
            parent_id=(
                None if data.get("parent_id") is None
                else int(data["parent_id"])  # type: ignore[arg-type]
            ),
            name=str(data["name"]),
            source=str(data["source"]),
            start=float(data["start"]),  # type: ignore[arg-type]
            attributes=dict(data.get("attributes") or {}),  # type: ignore[arg-type]
        )
        if data.get("end") is not None:
            span.end = float(data["end"])  # type: ignore[arg-type]
        span.status = str(data.get("status", STATUS_OK))
        return span

    def __repr__(self) -> str:
        return (
            f"<Span {self.name} #{self.span_id} trace={self.trace_id} "
            f"parent={self.parent_id} status={self.status}>"
        )


class _NoopSpan(Span):
    """The span handed out by a disabled tracer: accepts everything,
    records nothing.  Attribute writes land in a throwaway dict so the
    shared singleton cannot accumulate state."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(0, 0, None, "noop", "noop", 0.0)

    @property  # type: ignore[override]
    def attributes(self) -> Dict[str, object]:  # pragma: no cover - trivial
        return {}

    @attributes.setter
    def attributes(self, value: Dict[str, object]) -> None:
        pass


NOOP_SPAN = _NoopSpan()

#: Serialisable span context, as carried inside messages.
SpanContext = Dict[str, int]

#: What ``parent=`` accepts: a live span, a wire context, or nothing.
ParentLike = Union[Span, SpanContext, None]


class SpanTracer:
    """Creates, finishes, and stores spans against simulated time.

    ``now`` is a zero-argument callable returning the current simulated
    time (pass ``lambda: env.now``).  Finished spans live in a bounded
    ring (like :class:`TraceLog`), oldest evicted first.
    """

    def __init__(
        self,
        now: Callable[[], float],
        trace: Optional[TraceLog] = None,
        enabled: bool = True,
        max_spans: int = 100_000,
    ) -> None:
        self.enabled = enabled
        self._now = now
        self._trace = trace
        self._finished: Deque[Span] = deque(maxlen=max_spans)
        self._active: Dict[int, Span] = {}
        self._span_ids = itertools.count(1)
        self._trace_ids = itertools.count(1)
        #: Spans ever started/finished (survives ring eviction).
        self.started_total = 0
        self.finished_total = 0

    # -- creation ------------------------------------------------------------

    def start(
        self,
        name: str,
        source: str,
        parent: ParentLike = None,
        **attributes: object,
    ) -> Span:
        """Open a span.  ``parent`` may be a :class:`Span`, a wire
        context dict (``{"trace": .., "span": ..}``), or ``None`` for a
        new root trace."""
        if not self.enabled:
            return NOOP_SPAN
        parent_id: Optional[int] = None
        trace_id: Optional[int] = None
        if isinstance(parent, Span):
            if parent is not NOOP_SPAN:
                parent_id = parent.span_id
                trace_id = parent.trace_id
        elif isinstance(parent, dict):
            parent_id = int(parent.get("span", 0)) or None
            trace_id = int(parent.get("trace", 0)) or None
        if trace_id is None:
            trace_id = next(self._trace_ids)
        span = Span(
            trace_id=trace_id,
            span_id=next(self._span_ids),
            parent_id=parent_id,
            name=name,
            source=source,
            start=self._now(),
            attributes=dict(attributes) if attributes else {},
        )
        self._active[span.span_id] = span
        self.started_total += 1
        return span

    def finish(
        self, span: Span, status: str = STATUS_OK, **attributes: object
    ) -> None:
        """Close ``span`` at the current simulated time."""
        if span is NOOP_SPAN or not isinstance(span, Span) or span.finished:
            return
        span.end = self._now()
        span.status = status
        if attributes:
            span.attributes.update(attributes)
        self._active.pop(span.span_id, None)
        self._finished.append(span)
        self.finished_total += 1
        if self._trace is not None:
            self._trace.emit(
                span.end,
                span.source,
                "span",
                name=span.name,
                span=span.span_id,
                parent=span.parent_id,
                trace=span.trace_id,
                duration=round(span.duration, 9),
                status=span.status,
            )

    @contextmanager
    def span(
        self,
        name: str,
        source: str,
        parent: ParentLike = None,
        **attributes: object,
    ) -> Iterator[Span]:
        """Context manager: open on entry, close on exit; exceptions
        mark the span ``error`` (and propagate)."""
        opened = self.start(name, source, parent=parent, **attributes)
        try:
            yield opened
        except BaseException as error:
            self.finish(opened, status=STATUS_ERROR, error=str(error))
            raise
        else:
            self.finish(opened)

    def context(self, span: Span) -> Optional[SpanContext]:
        """The wire representation of ``span`` for message propagation
        (``None`` when tracing is off, so messages stay clean)."""
        if span is NOOP_SPAN or not self.enabled:
            return None
        return {"trace": span.trace_id, "span": span.span_id}

    # -- inspection ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._finished)

    def finished_spans(self) -> List[Span]:
        return list(self._finished)

    def active_spans(self) -> List[Span]:
        return list(self._active.values())

    def clear(self) -> None:
        self._finished.clear()
        self._active.clear()

    def trees(self) -> List["SpanTree"]:
        """Finished spans grouped into trees, roots sorted by start."""
        return build_trees(self.finished_spans())

    def render(self, limit: int = 20) -> str:
        """The last ``limit`` span trees as indented text."""
        trees = self.trees()[-limit:]
        return "\n".join(tree.render() for tree in trees)


class SpanTree:
    """One trace: a root span and its (recursively nested) children."""

    def __init__(self, span: Span) -> None:
        self.span = span
        self.children: List["SpanTree"] = []

    @property
    def size(self) -> int:
        return 1 + sum(child.size for child in self.children)

    def complete(self) -> bool:
        """True when every span in the tree has finished."""
        return self.span.finished and all(
            child.complete() for child in self.children
        )

    def walk(self) -> Iterator[Tuple[int, Span]]:
        """(depth, span) pairs in depth-first order."""
        stack: List[Tuple[int, "SpanTree"]] = [(0, self)]
        while stack:
            depth, node = stack.pop()
            yield depth, node.span
            for child in reversed(node.children):
                stack.append((depth + 1, child))

    def find(self, name: str) -> List[Span]:
        """Every span in the tree with the given name."""
        return [span for _depth, span in self.walk() if span.name == name]

    def render(self) -> str:
        lines = []
        for depth, span in self.walk():
            indent = "  " * depth
            end = f"{span.end:.6f}" if span.end is not None else "…"
            status = "" if span.status == STATUS_OK else f" !{span.status}"
            attrs = " ".join(
                f"{key}={value}" for key, value in span.attributes.items()
            )
            lines.append(
                f"{indent}{span.name} [{span.source}] "
                f"{span.start:.6f}→{end} ({span.duration * 1000:.3f}ms)"
                f"{status}{(' ' + attrs) if attrs else ''}"
            )
        return "\n".join(lines)


def build_trees(spans: List[Span]) -> List[SpanTree]:
    """Assemble flat spans into trees.

    Spans whose parent is missing (evicted from the ring, or still
    active) become roots of their own partial trees.
    """
    nodes = {span.span_id: SpanTree(span) for span in spans}
    roots: List[SpanTree] = []
    for span in spans:
        node = nodes[span.span_id]
        parent = (
            nodes.get(span.parent_id) if span.parent_id is not None else None
        )
        if parent is not None and parent is not node:
            parent.children.append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda child: child.span.start)
    roots.sort(key=lambda root: root.span.start)
    return roots
