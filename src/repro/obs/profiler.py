"""Simulation profiler: where does the wall-clock go?

E1–E10 report *simulated* time; this profiler reports *real* time — it
attributes the harness's own CPU cost to event kinds and to the
subsystem labels of the processes being resumed, giving perf work a
baseline (``top-K hottest event kinds``, time-in-subsystem table).

The profiler hooks :class:`~repro.sim.environment.Environment` through
the ``_profiler`` attachment point: when attached, each event's
callbacks are timed individually with ``perf_counter``; when detached
(the default), the kernel pays a single ``is not None`` check per step.

Labels: a :class:`~repro.sim.process.Process` named ``dispatch:host-a``
or ``send#12`` is attributed to its prefix (``dispatch``, ``send``);
non-process callbacks are attributed to the event's class name.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional, TYPE_CHECKING

from ..analysis.tables import render_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.environment import Environment
    from ..sim.events import Event


def _label_of(name: str) -> str:
    """Collapse a process name to its subsystem prefix."""
    for separator in (":", "#", "@"):
        index = name.find(separator)
        if index > 0:
            name = name[:index]
    return name or "anonymous"


class _Bucket:
    __slots__ = ("count", "seconds")

    def __init__(self) -> None:
        self.count = 0
        self.seconds = 0.0


class SimProfiler:
    """Attributes wall-clock time and event counts to sources/kinds."""

    def __init__(self) -> None:
        self._by_label: Dict[str, _Bucket] = {}
        self._by_event_kind: Dict[str, _Bucket] = {}
        self.events_processed = 0
        self._env: Optional["Environment"] = None
        self._started_wall: Optional[float] = None
        self._wall_accumulated = 0.0

    # -- attachment ----------------------------------------------------------

    def attach(self, env: "Environment") -> "SimProfiler":
        """Start profiling ``env`` (one profiler per environment)."""
        if env._profiler is not None:
            raise RuntimeError("environment already has a profiler attached")
        env._profiler = self
        self._env = env
        self._started_wall = perf_counter()
        return self

    def detach(self) -> None:
        """Stop profiling; totals stay readable."""
        if self._env is not None:
            self._env._profiler = None
            self._env = None
        if self._started_wall is not None:
            self._wall_accumulated += perf_counter() - self._started_wall
            self._started_wall = None

    @property
    def attached(self) -> bool:
        return self._env is not None

    @property
    def wall_seconds(self) -> float:
        """Wall-clock time spent attached, live while still attached."""
        return self._elapsed()

    # -- kernel hook (called from Environment.step) --------------------------

    def record_callback(
        self, event: "Event", callback: object, seconds: float
    ) -> None:
        """Attribute one callback run: processes by name prefix, the
        rest by the event's class."""
        owner = getattr(callback, "__self__", None)
        name = getattr(owner, "name", None)
        if isinstance(name, str):
            label = _label_of(name)
        else:
            label = type(event).__name__
        bucket = self._by_label.get(label)
        if bucket is None:
            bucket = self._by_label.setdefault(label, _Bucket())
        bucket.count += 1
        bucket.seconds += seconds

    def record_event(self, event: "Event", seconds: float) -> None:
        self.events_processed += 1
        kind = type(event).__name__
        bucket = self._by_event_kind.get(kind)
        if bucket is None:
            bucket = self._by_event_kind.setdefault(kind, _Bucket())
        bucket.count += 1
        bucket.seconds += seconds

    # -- results -------------------------------------------------------------

    def _elapsed(self) -> float:
        elapsed = self._wall_accumulated
        if self._started_wall is not None:
            elapsed += perf_counter() - self._started_wall
        return elapsed

    def by_label(self) -> List[Dict[str, object]]:
        """Time-in-subsystem rows, hottest first."""
        rows = [
            {
                "label": label,
                "count": bucket.count,
                "seconds": bucket.seconds,
            }
            for label, bucket in self._by_label.items()
        ]
        rows.sort(key=lambda row: row["seconds"], reverse=True)  # type: ignore[arg-type, return-value]
        return rows

    def hottest_events(self, top: int = 10) -> List[Dict[str, object]]:
        """The top-K event kinds by attributed wall-clock time."""
        rows = [
            {
                "kind": kind,
                "count": bucket.count,
                "seconds": bucket.seconds,
            }
            for kind, bucket in self._by_event_kind.items()
        ]
        rows.sort(key=lambda row: row["seconds"], reverse=True)  # type: ignore[arg-type, return-value]
        return rows[:top]

    def as_dict(self, top: int = 10) -> Dict[str, object]:
        """The whole profile as a JSON-serialisable dict."""
        return {
            "wall_seconds": self._elapsed(),
            "events_processed": self.events_processed,
            "by_label": self.by_label(),
            "hottest_events": self.hottest_events(top=top),
        }

    def render(self, top: int = 10) -> str:
        """Human-readable tables of the profile."""
        label_rows = [
            [
                row["label"],
                row["count"],
                row["seconds"],
                (
                    100.0 * float(row["seconds"]) / self._elapsed()  # type: ignore[arg-type]
                    if self._elapsed() > 0
                    else 0.0
                ),
            ]
            for row in self.by_label()[:top]
        ]
        event_rows = [
            [row["kind"], row["count"], row["seconds"]]
            for row in self.hottest_events(top=top)
        ]
        parts = [
            render_table(
                f"profile — time in subsystem "
                f"({self.events_processed} events, "
                f"{self._elapsed():.3f}s wall)",
                ["label", "callbacks", "seconds", "% wall"],
                label_rows,
            ),
            render_table(
                "profile — hottest event kinds",
                ["event", "count", "seconds"],
                event_rows,
            ),
        ]
        return "\n\n".join(parts)
