"""Sim-time sampling of the metrics registry into bounded series.

Point-in-time aggregates (``MetricsRegistry.snapshot()``) say where a
run *ended*; they cannot show the queue that built and drained, the
link churn of a mobility burst, or when the adaptation engine flipped
paradigms.  :class:`TimeSeriesRecorder` closes that gap: attached to an
:class:`~repro.sim.environment.Environment`, it samples the registry at
a fixed *simulated-time* cadence —

* every **counter** and **gauge** by current value;
* every **histogram** by *windowed* statistics (count and quantiles of
  only the samples observed since the previous tick);

— into per-metric ring buffers (``deque(maxlen=capacity)``), so memory
stays bounded no matter how long the run is.  Sampling piggybacks on
the kernel's step loop (no events of its own, so it neither keeps an
idle simulation alive nor perturbs event ordering): the first event
processed at or after each cadence boundary triggers one sweep.  A
detached environment pays a single ``is not None`` check per step; a
disabled recorder's ``on_step`` is one comparison and allocation-free.

The captured series travel inside :class:`~repro.obs.report.RunReport`
(schema v2, top-level key ``series``), giving every benchmark a
per-epoch view next to its final aggregates.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..sim.metrics import MetricsRegistry, interpolated_quantile

#: Windowed statistics recorded per histogram at each tick.
DEFAULT_HISTOGRAM_STATS = ("p50", "p99")

DEFAULT_CADENCE = 1.0
DEFAULT_CAPACITY = 1024


class TimeSeriesRecorder:
    """Samples registered metrics on a sim-time cadence, ring-buffered.

    ``cadence`` is in simulated seconds; ``capacity`` bounds the number
    of retained points *per series* (oldest evicted first).  ``names``
    optionally restricts sampling to an explicit set of metric names;
    by default every counter/gauge/histogram present in the registry at
    tick time is swept, so metrics created mid-run join automatically.
    """

    def __init__(
        self,
        metrics: MetricsRegistry,
        cadence: float = DEFAULT_CADENCE,
        capacity: int = DEFAULT_CAPACITY,
        enabled: bool = True,
        names: Optional[Sequence[str]] = None,
        histogram_stats: Sequence[str] = DEFAULT_HISTOGRAM_STATS,
        extra_probe=None,
    ) -> None:
        if cadence <= 0:
            raise ValueError(f"cadence must be positive, got {cadence}")
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.metrics = metrics
        self.cadence = float(cadence)
        self.capacity = int(capacity)
        self.enabled = enabled
        self.names = frozenset(names) if names is not None else None
        #: Optional ``() -> {name: value}`` swept alongside the
        #: registry — for figures that live outside it (e.g. the
        #: network's topology-cache counters, ``net.topo.*``).
        self.extra_probe = extra_probe
        self._quantiles: Tuple[Tuple[str, float], ...] = tuple(
            (stat, _parse_stat(stat)) for stat in histogram_stats
        )
        self._series: Dict[str, Deque[Tuple[float, float]]] = {}
        #: Per-histogram observation ordinal already consumed by
        #: earlier windows (``Histogram.observed``, not a buffer
        #: index — stable across ``max_samples`` decimation).
        self._consumed: Dict[str, int] = {}
        self._next_due = 0.0
        self._env = None
        self.samples_taken = 0
        #: Optional :class:`~repro.obs.health.HealthEngine` evaluated
        #: at the tail of every sweep (same sim-time cadence).
        self.health = None

    # -- kernel attachment ---------------------------------------------------

    def attach(self, env) -> "TimeSeriesRecorder":
        """Hook into ``env``'s step loop (one recorder per environment)."""
        if env._sampler is not None:
            raise RuntimeError("environment already has a sampler attached")
        env._sampler = self
        self._env = env
        self._next_due = env.now
        return self

    def detach(self) -> "TimeSeriesRecorder":
        """Stop sampling; already-captured points are kept."""
        if self._env is not None:
            self._env._sampler = None
            self._env = None
        return self

    @property
    def attached(self) -> bool:
        return self._env is not None

    def on_step(self, now: float) -> None:
        """Kernel callback after each processed event.

        Hot path: when disabled or between cadence boundaries this is a
        comparison and a return — no allocation (guarded by
        ``tests/obs/test_timeseries.py``).
        """
        if not self.enabled or now < self._next_due:
            return
        self.sample(now)

    # -- sampling ------------------------------------------------------------

    def sample(self, now: float) -> None:
        """Sweep the registry once at time ``now`` (also callable
        manually, e.g. for a final sample after ``run()`` returns)."""
        record = self._record
        names = self.names
        for name, counter in self.metrics._counters.items():
            if names is None or name in names:
                record(name, now, counter.value)
        for name, gauge in self.metrics._gauges.items():
            if names is None or name in names:
                record(name, now, gauge.value)
        for name, histogram in self.metrics._histograms.items():
            if names is not None and name not in names:
                continue
            start = self._consumed.get(name, 0)
            window = histogram.samples_since(start)
            self._consumed[name] = histogram.observed
            record(f"{name}.count", now, float(len(window)))
            if window:
                ordered = sorted(window)
                for stat, q in self._quantiles:
                    record(
                        f"{name}.{stat}",
                        now,
                        interpolated_quantile(ordered, q),
                    )
        if self.extra_probe is not None:
            for name, value in self.extra_probe().items():
                if names is None or name in names:
                    record(name, now, float(value))
        self.samples_taken += 1
        if self.health is not None:
            self.health.evaluate(now)
        # Next boundary strictly after ``now``: long event gaps produce
        # one fresh sample, not a backfill burst.
        self._next_due = (math.floor(now / self.cadence) + 1.0) * self.cadence

    def _record(self, name: str, time: float, value: float) -> None:
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = deque(maxlen=self.capacity)
        series.append((time, value))

    # -- inspection ------------------------------------------------------------

    def series_names(self) -> List[str]:
        return sorted(self._series)

    def points(self, name: str) -> List[Tuple[float, float]]:
        """The retained (sim_time, value) points for one series."""
        return list(self._series.get(name, ()))

    def window_quantiles(self, name: str, stat: str) -> List[Tuple[float, float]]:
        """Convenience accessor for a histogram's windowed stat series."""
        return self.points(f"{name}.{stat}")

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready form: the ``series`` section of a RunReport."""
        return {
            "cadence": self.cadence,
            "capacity": self.capacity,
            "samples": self.samples_taken,
            "series": {
                name: {
                    "times": [time for time, _ in points],
                    "values": [value for _, value in points],
                }
                for name, points in sorted(self._series.items())
            },
        }


def _parse_stat(stat: str) -> float:
    """``"p50"`` → 0.5 (validated here so bad specs fail at set-up)."""
    if not stat.startswith("p"):
        raise ValueError(f"histogram stat {stat!r} must look like 'p50'")
    try:
        percent = float(stat[1:])
    except ValueError:
        raise ValueError(f"histogram stat {stat!r} must look like 'p50'")
    if not 0.0 <= percent <= 100.0:
        raise ValueError(f"histogram stat {stat!r} outside p0..p100")
    return percent / 100.0
