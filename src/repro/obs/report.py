"""Machine-readable run reports: one JSON per experiment run.

A :class:`RunReport` bundles what a benchmark knows at the end of a
run — environment fingerprint, experiment parameters, the full metrics
snapshot, trace kind counts, the simulation profile, and the captured
span trees — under a versioned schema, so the perf trajectory of the
repository is diffable across commits and renderable without rerunning
anything (``python -m repro report <experiment>``).
"""

from __future__ import annotations

import json
import platform
import sys
from typing import Dict, List, Optional, TYPE_CHECKING

from ..analysis.tables import render_table
from .fileio import atomic_write_text
from .spans import Span, SpanTree, build_trees
from .wallclock import wall_time

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.world import World
    from .profiler import SimProfiler

#: Bump on any backwards-incompatible change to the report layout.
#: v3 added the fleet-health sections: ``nodes`` (per-node rollup of
#: labeled metrics), ``health`` (SLO specs, states, breach events from
#: :class:`~repro.obs.health.HealthEngine`), and ``flight``
#: (flight-recorder dumps captured at breach time).  v2 added the
#: ``series`` section (sim-time samples from
#: :class:`~repro.obs.timeseries.TimeSeriesRecorder`).  Older reports
#: load fine — the sections they predate are simply ``None``.
SCHEMA_VERSION = 3

#: Top-level keys every report carries, in schema order.
SCHEMA_KEYS = (
    "schema",
    "name",
    "created_at",
    "env",
    "params",
    "metrics",
    "kind_counts",
    "profile",
    "spans",
    "series",
    "nodes",
    "health",
    "flight",
)


class ReportSchemaError(ValueError):
    """A JSON document that is not a readable run report."""


class RunReport:
    """A serialisable snapshot of one experiment run."""

    def __init__(
        self,
        name: str,
        env: Optional[Dict[str, object]] = None,
        params: Optional[Dict[str, object]] = None,
        metrics: Optional[Dict[str, float]] = None,
        kind_counts: Optional[Dict[str, int]] = None,
        profile: Optional[Dict[str, object]] = None,
        spans: Optional[List[Dict[str, object]]] = None,
        series: Optional[Dict[str, object]] = None,
        nodes: Optional[Dict[str, Dict[str, float]]] = None,
        health: Optional[Dict[str, object]] = None,
        flight: Optional[Dict[str, object]] = None,
        created_at: Optional[float] = None,
        schema: int = SCHEMA_VERSION,
    ) -> None:
        self.schema = schema
        self.name = name
        # Wall clock ONLY for reports built outside any kernel (e.g.
        # analytical benches) — kernel-attached captures go through
        # ``capture``, which defaults to deterministic sim-time.
        self.created_at = wall_time() if created_at is None else created_at
        self.env = env or {}
        self.params = params or {}
        self.metrics = metrics or {}
        self.kind_counts = kind_counts or {}
        self.profile = profile
        self.spans = spans or []
        self.series = series
        self.nodes = nodes
        self.health = health
        self.flight = flight

    # -- capture -----------------------------------------------------------

    @classmethod
    def capture(
        cls,
        name: str,
        world: "World",
        profiler: Optional["SimProfiler"] = None,
        params: Optional[Dict[str, object]] = None,
        created_at: Optional[float] = None,
    ) -> "RunReport":
        """Snapshot a finished :class:`~repro.core.world.World`.

        ``created_at`` defaults to the world's *simulated* end time, so
        a kernel-attached capture is a pure function of the run — two
        same-seed captures (in one process or across worker processes)
        compare bit-identical without stripping anything.  Wall-clock
        stamps silently broke exactly that, so they are now opt-in:
        pass ``created_at=repro.obs.wallclock.wall_time()`` explicitly
        if a human-facing timestamp really is wanted.
        """
        import repro

        env = {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "repro_version": repro.__version__,
            "seed": getattr(world, "seed", None),
            "sim_time": world.env.now,
            "nodes": len(world.network),
        }
        kind_counts = dict(world.trace._kind_counts)
        spans = [span.to_dict() for span in world.tracer.finished_spans()]
        recorder = getattr(world, "timeseries", None)
        if recorder is not None and recorder.enabled:
            # Terminal sweep: the state at end-of-run is always the last
            # point, even when the run ended between cadence boundaries.
            recorder.sample(world.env.now)
        metrics = dict(world.summary())
        if spans:
            # Fold the trace-analysis aggregates (critical-path
            # quantiles, attribution shares, orphan counts) into the
            # metric snapshot so ``repro compare`` gates on them like
            # any other metric.  Local import: trace.py is a consumer
            # of reports, not a dependency of every capture.
            from .trace import TraceAnalysis

            metrics.update(TraceAnalysis.from_spans(spans).metrics())
        from ..sim.metrics import rollup_by_label

        nodes = rollup_by_label(metrics) or None
        engine = getattr(world, "health", None)
        health = None
        flight = None
        if engine is not None:
            # Quiet engines add nothing: the sections stay None, so an
            # armed-but-unbreached run's report is bit-identical to an
            # unarmed one (modulo the rollup, which exists either way).
            if engine.breached:
                health = engine.as_dict()
            if engine.flight_dumps:
                flight = dict(engine.flight_dumps)
        return cls(
            name=name,
            env=env,
            params=params,
            metrics=metrics,
            kind_counts=kind_counts,
            profile=profiler.as_dict() if profiler is not None else None,
            spans=spans,
            series=recorder.as_dict() if recorder is not None else None,
            nodes=nodes,
            health=health,
            flight=flight,
            created_at=world.env.now if created_at is None else created_at,
        )

    # -- (de)serialisation ---------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": self.schema,
            "name": self.name,
            "created_at": self.created_at,
            "env": self.env,
            "params": self.params,
            "metrics": self.metrics,
            "kind_counts": self.kind_counts,
            "profile": self.profile,
            "spans": self.spans,
            "series": self.series,
            "nodes": self.nodes,
            "health": self.health,
            "flight": self.flight,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunReport":
        return cls(
            name=str(data.get("name", "")),
            env=dict(data.get("env") or {}),  # type: ignore[arg-type]
            params=dict(data.get("params") or {}),  # type: ignore[arg-type]
            metrics=dict(data.get("metrics") or {}),  # type: ignore[arg-type]
            kind_counts=dict(data.get("kind_counts") or {}),  # type: ignore[arg-type]
            profile=data.get("profile"),  # type: ignore[arg-type]
            spans=list(data.get("spans") or []),  # type: ignore[arg-type]
            series=data.get("series"),  # type: ignore[arg-type]
            nodes=data.get("nodes"),  # type: ignore[arg-type]
            health=data.get("health"),  # type: ignore[arg-type]
            flight=data.get("flight"),  # type: ignore[arg-type]
            created_at=float(data.get("created_at", 0.0)),  # type: ignore[arg-type]
            schema=int(data.get("schema", SCHEMA_VERSION)),  # type: ignore[arg-type]
        )

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: str) -> "RunReport":
        with open(path) as handle:
            return cls.from_json(handle.read())

    @staticmethod
    def validate(data: object) -> Dict[str, object]:
        """Check that ``data`` is a readable report document.

        Returns the dict on success; raises :class:`ReportSchemaError`
        with a one-line human explanation otherwise (the CLI turns this
        into a clean non-zero exit instead of a traceback).
        """
        if not isinstance(data, dict):
            raise ReportSchemaError(
                f"expected a JSON object, got {type(data).__name__}"
            )
        schema = data.get("schema")
        if not isinstance(schema, int) or isinstance(schema, bool):
            raise ReportSchemaError(
                "missing or non-integer 'schema' field — not a run report"
            )
        if schema > SCHEMA_VERSION:
            raise ReportSchemaError(
                f"report schema v{schema} is newer than this code "
                f"(supports up to v{SCHEMA_VERSION}) — upgrade repro"
            )
        metrics = data.get("metrics")
        if metrics is not None and not isinstance(metrics, dict):
            raise ReportSchemaError("'metrics' must be an object")
        for key in ("nodes", "health", "flight"):
            section = data.get(key)
            if section is not None and not isinstance(section, dict):
                raise ReportSchemaError(f"'{key}' must be an object or null")
        health = data.get("health")
        if health is not None and not isinstance(health.get("events"), list):
            raise ReportSchemaError("'health.events' must be a list")
        return data

    @classmethod
    def load_checked(cls, path: str) -> "RunReport":
        """Load ``path``, raising :class:`ReportSchemaError` on any
        unreadable or schema-mismatched document."""
        try:
            with open(path) as handle:
                data = json.load(handle)
        except OSError as error:
            raise ReportSchemaError(f"cannot read {path}: {error}")
        except json.JSONDecodeError as error:
            raise ReportSchemaError(f"{path} is not valid JSON: {error}")
        return cls.from_dict(cls.validate(data))

    def write(self, path: str) -> str:
        """Write the report atomically (temp file + ``os.replace``), so
        a process killed mid-write never leaves a truncated document."""
        return atomic_write_text(path, self.to_json() + "\n")

    # -- inspection ----------------------------------------------------------

    def span_trees(self) -> List[SpanTree]:
        return build_trees([Span.from_dict(data) for data in self.spans])

    def complete_trees(self) -> List[SpanTree]:
        """Span trees in which every span finished."""
        return [tree for tree in self.span_trees() if tree.complete()]

    def render(self, top: int = 20) -> str:
        """The report as human-readable text (tables + span trees)."""
        parts = [
            f"run report — {self.name}  (schema v{self.schema})",
            "  "
            + "  ".join(
                f"{key}={value}" for key, value in sorted(self.env.items())
            ),
        ]
        if self.params:
            parts.append(
                "  params: "
                + ", ".join(
                    f"{key}={value}"
                    for key, value in sorted(self.params.items())
                )
            )
        metric_rows = [
            [name, value] for name, value in sorted(self.metrics.items())
        ]
        parts.append(
            render_table(
                f"metrics ({len(metric_rows)})", ["metric", "value"],
                metric_rows,
            )
        )
        if self.kind_counts:
            count_rows = sorted(
                self.kind_counts.items(), key=lambda item: -item[1]
            )[:top]
            parts.append(
                render_table(
                    "trace kinds (top)", ["kind", "count"],
                    [[kind, count] for kind, count in count_rows],
                )
            )
        if self.profile:
            label_rows = [
                [row["label"], row["count"], row["seconds"]]
                for row in self.profile.get("by_label", [])[:top]  # type: ignore[union-attr]
            ]
            parts.append(
                render_table(
                    "profile — time in subsystem "
                    f"({self.profile.get('events_processed', 0)} events, "  # type: ignore[union-attr]
                    f"{float(self.profile.get('wall_seconds', 0.0)):.3f}s)",  # type: ignore[arg-type, union-attr]
                    ["label", "callbacks", "seconds"],
                    label_rows,
                )
            )
            event_rows = [
                [row["kind"], row["count"], row["seconds"]]
                for row in self.profile.get("hottest_events", [])  # type: ignore[union-attr]
            ]
            if event_rows:
                parts.append(
                    render_table(
                        "profile — hottest event kinds",
                        ["event", "count", "seconds"],
                        event_rows,
                    )
                )
        if self.series and self.series.get("series"):
            table = self.series["series"]
            series_rows = []
            for series_name in sorted(table)[:top]:
                values = table[series_name].get("values", [])
                last = values[-1] if values else 0.0
                series_rows.append([series_name, len(values), last])
            parts.append(
                render_table(
                    f"time series (cadence {self.series.get('cadence')}s, "
                    f"{self.series.get('samples')} sweeps)",
                    ["series", "points", "last"],
                    series_rows,
                )
            )
        if self.health:
            states = self.health.get("states") or {}
            events = self.health.get("events") or []
            state_rows = [
                [node, states[node]] for node in sorted(states)
            ]
            parts.append(
                render_table(
                    f"fleet health ({len(events)} transitions, "
                    f"{self.health.get('evaluations', 0)} sweeps)",
                    ["node", "state"],
                    state_rows,
                )
            )
            event_rows = [
                [
                    event.get("time"),
                    event.get("node"),
                    event.get("slo"),
                    f"{event.get('from')}→{event.get('to')}",
                ]
                for event in events[:top]
            ]
            if event_rows:
                parts.append(
                    render_table(
                        "health transitions (first "
                        f"{len(event_rows)})",
                        ["sim time", "node", "slo", "change"],
                        event_rows,
                    )
                )
        if self.flight:
            dump_rows = [
                [
                    node,
                    dump.get("slo"),
                    dump.get("level"),
                    len(dump.get("events") or []),
                ]
                for node, dump in sorted(self.flight.items())
            ]
            parts.append(
                render_table(
                    "flight-recorder dumps",
                    ["node", "slo", "level", "events"],
                    dump_rows,
                )
            )
        trees = self.span_trees()
        if trees:
            complete = sum(1 for tree in trees if tree.complete())
            parts.append(
                f"spans: {len(self.spans)} in {len(trees)} trees "
                f"({complete} complete); largest tree:"
            )
            largest = max(trees, key=lambda tree: tree.size)
            parts.append(largest.render())
        return "\n\n".join(parts)
