"""The one place wall-clock time may enter ``repro``.

Everything under ``src/repro`` models *simulated* time; a wall-clock
reading that leaks into a run artifact silently destroys the whole-run
bit-identity that replay checking (``repro matrix --strict``) and the
same-seed determinism tests rely on.  A lint-style AST guard
(``tests/obs/test_wallclock_guard.py``) therefore bans ``time.time()``
everywhere in the package except this module — code that genuinely
needs a wall-clock stamp (a *default* for reports captured outside any
kernel, never for kernel-attached captures) imports :func:`wall_time`
so every such site is greppable and reviewed.
"""

from __future__ import annotations

import time


def wall_time() -> float:
    """Seconds since the epoch, from the real (wall) clock.

    The only sanctioned wall-clock read in ``repro``.  Never use it for
    anything attached to a running kernel — pass ``env.now`` instead.
    """
    return time.time()
