"""Cross-cutting observability: spans, profiling, exporters, reports.

The middleware's claims are *measured* claims, so measurement is a
first-class subsystem:

* :mod:`repro.obs.spans`     — causal span trees across hosts
  (:class:`Span`, :class:`SpanTracer`), propagated inside messages;
* :mod:`repro.obs.profiler`  — :class:`SimProfiler`, wall-clock and
  event-count attribution for the simulation kernel;
* :mod:`repro.obs.exporters` — JSONL trace/span dumps and
  Prometheus-style metric text;
* :mod:`repro.obs.report`    — :class:`RunReport`, the versioned JSON
  document every benchmark writes to ``benchmarks/results/``;
* :mod:`repro.obs.timeseries`— :class:`TimeSeriesRecorder`, sim-time
  cadence sampling of the metrics registry into bounded series;
* :mod:`repro.obs.diff`      — cross-run report diffing with a
  higher/lower-is-better direction registry (``python -m repro
  compare``, the benchmark regression gate);
* :mod:`repro.obs.trace`     — causal trace analytics over a report's
  spans: DAG reconstruction, per-hop latency attribution, critical
  paths, and Chrome/Perfetto export (``python -m repro trace``);
* :mod:`repro.obs.health`    — in-run fleet health: per-node
  :class:`SloSpec` monitors evaluated on the sampling cadence
  (:class:`HealthEngine`) and a breach-triggered
  :class:`FlightRecorder` (``python -m repro health``).

See ``docs/OBSERVABILITY.md`` for the span model and the
``subsystem.metric`` naming scheme.
"""

from .exporters import (
    metrics_to_prometheus,
    parse_prometheus,
    samples_to_exposition,
    sanitize_metric_name,
    spans_from_jsonl,
    spans_to_jsonl,
    trace_from_jsonl,
    trace_to_jsonl,
    write_text,
)
from .diff import (
    DEFAULT_DIRECTIONS,
    MetricDelta,
    ReportDiff,
    diff_report_files,
    diff_reports,
    direction_of,
)
from .fileio import (
    append_jsonl,
    atomic_write_text,
    locked_append_line,
    read_jsonl,
    read_jsonl_if_exists,
)
from .health import (
    FlightRecorder,
    HealthEngine,
    LEVELS,
    SloSpec,
    worst_level,
)
from .wallclock import wall_time
from .profiler import SimProfiler
from .report import ReportSchemaError, RunReport, SCHEMA_KEYS, SCHEMA_VERSION
from .timeseries import TimeSeriesRecorder
from .trace import (
    BUCKETS,
    INVOCATION_OPS,
    InvocationBreakdown,
    TraceAnalysis,
    critical_path,
)
from .spans import (
    NOOP_SPAN,
    STATUS_ERROR,
    STATUS_OK,
    Span,
    SpanTracer,
    SpanTree,
    build_trees,
)

__all__ = [
    "BUCKETS",
    "DEFAULT_DIRECTIONS",
    "FlightRecorder",
    "HealthEngine",
    "INVOCATION_OPS",
    "InvocationBreakdown",
    "LEVELS",
    "MetricDelta",
    "NOOP_SPAN",
    "SloSpec",
    "ReportDiff",
    "ReportSchemaError",
    "RunReport",
    "SCHEMA_KEYS",
    "SCHEMA_VERSION",
    "STATUS_ERROR",
    "STATUS_OK",
    "SimProfiler",
    "Span",
    "SpanTracer",
    "SpanTree",
    "TimeSeriesRecorder",
    "TraceAnalysis",
    "append_jsonl",
    "atomic_write_text",
    "build_trees",
    "critical_path",
    "diff_report_files",
    "diff_reports",
    "direction_of",
    "locked_append_line",
    "metrics_to_prometheus",
    "parse_prometheus",
    "read_jsonl",
    "read_jsonl_if_exists",
    "samples_to_exposition",
    "sanitize_metric_name",
    "spans_from_jsonl",
    "spans_to_jsonl",
    "trace_from_jsonl",
    "trace_to_jsonl",
    "wall_time",
    "worst_level",
    "write_text",
]
