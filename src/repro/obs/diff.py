"""Cross-run report diffing: the longitudinal half of observability.

A single :class:`~repro.obs.report.RunReport` says what one run did;
this module says what *changed* between two — and whether the change
is an improvement or a regression.  That needs a notion of direction:
``net.delivery_latency.p99`` going up is bad, ``speedup`` going up is
good, ``world.nodes`` going anywhere is neither.  The
:data:`DEFAULT_DIRECTIONS` registry encodes that as ordered glob
patterns over metric names (first match wins; unmatched names are
*neutral* — reported, never gating).

``diff_reports`` compares the ``metrics`` sections of two report
dicts under a relative threshold and produces a :class:`ReportDiff`
whose verdict is machine-readable (``to_dict``) and human-readable
(``render``).  ``python -m repro compare A B --fail-on regress`` wraps
it for CI: exit 1 when any directional metric regresses past the
threshold.  ``benchmarks/_common.gate_against_baseline`` wraps it for
the benchmark suite, replacing per-script hand-rolled floor asserts
with checked-in baseline reports.
"""

from __future__ import annotations

import json
import math
from fnmatch import fnmatchcase
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .report import RunReport

#: Default relative-change threshold below which a metric counts as
#: unchanged (5%); gates that encode hard floors use 0.0.
DEFAULT_THRESHOLD = 0.05

#: Ordered (glob pattern, direction) rules; first match wins.
#: ``None`` means neutral: the metric is diffed and displayed but can
#: never regress.  Neutral carve-outs come first so e.g. a histogram's
#: ``.count`` is not dragged into its parent's direction.
DEFAULT_DIRECTIONS: Tuple[Tuple[str, Optional[str]], ...] = (
    # Volume/shape carve-outs: more calls is not better or worse.
    ("*.count", None),
    ("world.now", None),
    ("*nodes*", None),
    ("*epoch*", None),
    ("*rounds*", None),
    ("*sweeps*", None),
    ("*grid_cell*", None),
    ("*invalidations*", None),
    ("*cache_size*", None),
    # Injected-fault tallies describe the scenario, not the system
    # under test (and must shadow e.g. the *latency* rule for
    # faults.extra_latency); ditto the checksum discards they force.
    ("faults.*", None),
    ("*corrupt_discarded*", None),
    # Fleet health (repro.obs.health): breach tallies should shrink;
    # per-node labeled series and the label-cardinality bookkeeping
    # are scenario shape.  The family precedes the generic rules so a
    # labeled ``health.breaches{node="x"}`` never matches e.g.
    # ``*reach*``-style patterns added later.
    ("health.breaches*", "lower"),
    ("health.critical_breaches*", "lower"),
    ("health.*", None),
    ("obs.labels.*", None),
    # Hostile-guest chaos (repro.faults.hostile): terminations are the
    # containment working, escapes are the one figure that must never
    # grow; launch counts and metered attack cost are scenario shape.
    # The security.* provider families describe how much guest
    # activity the workload ran, not its quality — except violations
    # and errors on a *fixed* scenario, which stay neutral too because
    # hostile plans terminate guests *by* violation.
    ("hostile.terminated*", "higher"),
    ("hostile.escapes*", "lower"),
    ("hostile.*", None),
    ("security.sandbox_violations*", None),
    ("security.sandbox_runs*", None),
    ("security.sandbox_errors*", None),
    ("security.guest_*", None),
    # Trace analytics (repro.obs.trace): the critical path and the
    # shares of time lost to queueing/transit stalls/retries should
    # shrink; the raw span/tree/invocation tallies are scenario shape.
    # The family must precede the generic rules — ``*delivered*`` would
    # otherwise read trace.duplicate_deliveries as "higher is better".
    ("trace.orphans", "lower"),
    ("trace.duplicate_deliveries", None),
    ("trace.critical_path.*", "lower"),
    ("trace.queue_share", "lower"),
    ("trace.transit_share", "lower"),
    ("trace.retry_share", "lower"),
    ("trace.other_share", "lower"),
    ("trace.*_seconds", "lower"),
    ("trace.*", None),
    # Run-matrix orchestrator (repro.runner): job failures and strict
    # replay mismatches must never grow, completions must never drop;
    # the job tally and summed sim-time are matrix shape.  The family
    # precedes the generic rules so runner.completed_jobs gets its
    # direction here rather than from ``*completed*``.
    ("runner.failures", "lower"),
    ("runner.replay_mismatches", "lower"),
    ("runner.completed_jobs", "higher"),
    ("runner.job_ok*", "higher"),
    ("runner.*", None),
    # Routing-fabric counters (repro.net.routing): tree reuse should
    # grow; repairs/flushes/planner-ladder tallies are workload shape
    # (a repair is the system *working*, not failing).  Elided work —
    # moves and scans proven no-ops — is pure savings.
    ("routing.tree_hits", "higher"),
    ("routing.tree_misses", "lower"),
    ("routing.repairs", None),
    ("routing.flushes", None),
    ("routing.hier.hits", "higher"),
    ("routing.hier.misses", "lower"),
    ("routing.hier.*", None),
    ("*moves_elided*", "higher"),
    ("*scans_elided*", "higher"),
    ("*revalidations*", None),
    # Higher is better: useful work and cache effectiveness.
    ("*speedup*", "higher"),
    ("*completion_rate*", "higher"),
    ("*completed*", "higher"),
    ("*hits*", "higher"),
    ("*served*", "higher"),
    ("*delivered*", "higher"),
    ("*reach*", "higher"),
    ("*coverage*", "higher"),
    ("*throughput*", "higher"),
    ("*availability*", "higher"),
    # Lower is better: time, loss, failures, and spend.
    ("*seconds*", "lower"),
    ("*latency*", "lower"),
    ("*_rtt*", "lower"),
    ("*misses*", "lower"),
    ("*lost*", "lower"),
    ("*failures*", "lower"),
    ("*timeouts*", "lower"),
    ("*rejections*", "lower"),
    ("*errors*", "lower"),
    ("*retries*", "lower"),
    ("*stale_replies*", "lower"),
    ("*failed*", "lower"),
    ("*money*", "lower"),
    ("*bytes*", "lower"),
    ("*retransmissions*", "lower"),
    ("*overhead*", "lower"),
    ("*ratio*", "lower"),
)

_VERDICT_ORDER = {"regressed": 0, "improved": 1, "changed": 2, "unchanged": 3}


def direction_of(
    name: str,
    overrides: Optional[Mapping[str, Optional[str]]] = None,
    rules: Sequence[Tuple[str, Optional[str]]] = DEFAULT_DIRECTIONS,
) -> Optional[str]:
    """``"higher"``, ``"lower"``, or ``None`` (neutral) for a metric.

    ``overrides`` maps exact metric names to a direction and beats the
    pattern rules — the hook for baselines/CLI flags to pin semantics
    the patterns get wrong.
    """
    if overrides and name in overrides:
        return overrides[name]
    for pattern, direction in rules:
        if fnmatchcase(name, pattern):
            return direction
    return None


class MetricDelta:
    """One metric's change between a base and a new run."""

    def __init__(
        self,
        name: str,
        base: float,
        new: float,
        direction: Optional[str],
        threshold: float,
    ) -> None:
        self.name = name
        self.base = base
        self.new = new
        self.direction = direction
        self.delta = new - base
        if base != 0.0:
            self.relative = (new - base) / abs(base)
        elif new == 0.0:
            self.relative = 0.0
        else:
            self.relative = math.copysign(math.inf, new - base)
        if abs(self.relative) <= threshold:
            self.verdict = "unchanged"
        elif direction is None:
            self.verdict = "changed"
        elif (direction == "lower") == (self.delta > 0):
            self.verdict = "regressed"
        else:
            self.verdict = "improved"

    def to_dict(self) -> Dict[str, object]:
        relative = self.relative
        return {
            "name": self.name,
            "base": self.base,
            "new": self.new,
            "delta": self.delta,
            # JSON has no Infinity; "new appeared from zero" serialises
            # as null and the verdict field carries the judgement.
            "relative": relative if math.isfinite(relative) else None,
            "direction": self.direction,
            "verdict": self.verdict,
        }

    def __repr__(self) -> str:
        return (
            f"<MetricDelta {self.name} {self.base:g}->{self.new:g} "
            f"{self.verdict}>"
        )


class ReportDiff:
    """The full comparison of two report documents."""

    def __init__(
        self,
        base_name: str,
        new_name: str,
        threshold: float,
        deltas: List[MetricDelta],
        added: Dict[str, float],
        removed: Dict[str, float],
        notes: List[str],
    ) -> None:
        self.base_name = base_name
        self.new_name = new_name
        self.threshold = threshold
        self.deltas = deltas
        self.added = added
        self.removed = removed
        self.notes = notes

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.verdict == "regressed"]

    @property
    def improvements(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.verdict == "improved"]

    @property
    def verdict(self) -> str:
        return "regression" if self.regressions else "ok"

    def to_dict(self) -> Dict[str, object]:
        return {
            "base": self.base_name,
            "new": self.new_name,
            "threshold": self.threshold,
            "verdict": self.verdict,
            "regressed": [d.name for d in self.regressions],
            "improved": [d.name for d in self.improvements],
            "added": dict(sorted(self.added.items())),
            "removed": dict(sorted(self.removed.items())),
            "notes": list(self.notes),
            "deltas": [d.to_dict() for d in self.deltas],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render(self, all_metrics: bool = False) -> str:
        """Human-readable comparison (regressions first).

        By default unchanged metrics are elided; ``all_metrics=True``
        prints every delta.
        """
        from ..analysis.tables import render_table

        shown = [
            delta
            for delta in self.deltas
            if all_metrics or delta.verdict != "unchanged"
        ]
        shown.sort(key=lambda d: (_VERDICT_ORDER[d.verdict], d.name))
        rows = []
        for delta in shown:
            relative = delta.relative
            rel_text = (
                f"{relative * 100:+.1f}%" if math.isfinite(relative)
                else "new!=0"
            )
            rows.append(
                [
                    delta.name,
                    f"{delta.base:g}",
                    f"{delta.new:g}",
                    rel_text,
                    delta.direction or "-",
                    delta.verdict,
                ]
            )
        unchanged = len(self.deltas) - len(shown)
        parts = [
            f"compare — base: {self.base_name}  vs  new: {self.new_name}  "
            f"(threshold {self.threshold * 100:g}%)",
            render_table(
                f"metric deltas ({len(shown)} shown, {unchanged} unchanged)",
                ["metric", "base", "new", "rel", "direction", "verdict"],
                rows,
            ),
        ]
        if self.added:
            parts.append(
                "only in new: "
                + ", ".join(f"{k}={v:g}" for k, v in sorted(self.added.items()))
            )
        if self.removed:
            parts.append(
                "only in base: "
                + ", ".join(
                    f"{k}={v:g}" for k, v in sorted(self.removed.items())
                )
            )
        for note in self.notes:
            parts.append(f"note: {note}")
        parts.append(
            f"verdict: {self.verdict.upper()}"
            + (
                f" — {len(self.regressions)} metric(s) regressed past "
                f"{self.threshold * 100:g}%"
                if self.regressions
                else ""
            )
        )
        return "\n\n".join(parts)


def _numeric_metrics(document: Mapping[str, object]) -> Dict[str, float]:
    """The comparable scalars of a report dict.

    Accepts a full RunReport document (uses its ``metrics`` section) or
    a bare ``{name: value}`` mapping, so hand-written baselines and
    trajectory entries diff the same way as full reports.
    """
    section = document.get("metrics", document)
    if not isinstance(section, Mapping):
        return {}
    return {
        str(name): float(value)
        for name, value in section.items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }


def diff_reports(
    base: Mapping[str, object],
    new: Mapping[str, object],
    threshold: float = DEFAULT_THRESHOLD,
    overrides: Optional[Mapping[str, Optional[str]]] = None,
) -> ReportDiff:
    """Structurally compare two report documents' metrics."""
    base_metrics = _numeric_metrics(base)
    new_metrics = _numeric_metrics(new)
    deltas = [
        MetricDelta(
            name,
            base_metrics[name],
            new_metrics[name],
            direction_of(name, overrides),
            threshold,
        )
        for name in sorted(set(base_metrics) & set(new_metrics))
    ]
    added = {
        name: new_metrics[name] for name in new_metrics if name not in base_metrics
    }
    removed = {
        name: base_metrics[name] for name in base_metrics if name not in new_metrics
    }
    notes = []
    base_params = base.get("params") or {}
    new_params = new.get("params") or {}
    if base_params != new_params:
        notes.append(
            f"params differ (base {base_params!r} vs new {new_params!r}) — "
            "runs may not be directly comparable"
        )
    base_schema = base.get("schema")
    new_schema = new.get("schema")
    if base_schema != new_schema and base_schema is not None:
        notes.append(f"schema differs (v{base_schema} vs v{new_schema})")
    return ReportDiff(
        base_name=str(base.get("name", "base")),
        new_name=str(new.get("name", "new")),
        threshold=threshold,
        deltas=deltas,
        added=added,
        removed=removed,
        notes=notes,
    )


def diff_report_files(
    base_path: str,
    new_path: str,
    threshold: float = DEFAULT_THRESHOLD,
    overrides: Optional[Mapping[str, Optional[str]]] = None,
) -> ReportDiff:
    """Load two report JSON files (validated) and diff them.

    Raises :class:`~repro.obs.report.ReportSchemaError` on unreadable
    or schema-mismatched input.
    """
    base = RunReport.validate(_load_json(base_path))
    new = RunReport.validate(_load_json(new_path))
    return diff_reports(base, new, threshold=threshold, overrides=overrides)


def _load_json(path: str) -> object:
    from .report import ReportSchemaError

    try:
        with open(path) as handle:
            return json.load(handle)
    except OSError as error:
        raise ReportSchemaError(f"cannot read {path}: {error}")
    except json.JSONDecodeError as error:
        raise ReportSchemaError(f"{path} is not valid JSON: {error}")
