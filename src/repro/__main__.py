"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``info``    — version, subsystems, and experiment inventory;
* ``demo``    — run the quickstart scenario inline (all four paradigms);
* ``assess``  — print a design-time paradigm assessment for a task
  described by flags;
* ``report``  — render a machine-readable run report (the JSON files
  the benchmarks write under ``benchmarks/results/``).
"""

from __future__ import annotations

import argparse
import sys


def _cmd_info(_args: argparse.Namespace) -> int:
    import repro
    from repro.core.assessment import STANDARD_CONTEXTS

    print(f"repro {repro.__version__} — logical-mobility middleware")
    print("reproduction of Zachariadis, Mascolo & Emmerich, ICDCSW'02\n")
    print("subsystems: sim, net, lmu, security, core, tuplespace, apps,")
    print("            workloads, analysis")
    print("paradigms : cs, rev, cod, agents (+ discovery, lookup, update)")
    print(
        "contexts  : "
        + ", ".join(name for name, _link in STANDARD_CONTEXTS)
    )
    print("experiments: E1-E10 + ablations A1-A4 (see DESIGN.md §3)")
    return 0


def _cmd_demo(_args: argparse.Namespace) -> int:
    import os
    import runpy

    path = os.path.join(
        os.path.dirname(__file__), os.pardir, os.pardir, "examples",
        "quickstart.py",
    )
    if not os.path.exists(path):
        print("examples/quickstart.py not found (installed without examples)")
        return 1
    runpy.run_path(path, run_name="__main__")
    return 0


def _cmd_assess(args: argparse.Namespace) -> int:
    from repro.core import CostWeights, TaskProfile, assess

    profile = TaskProfile(
        interactions=args.interactions,
        request_bytes=args.request_bytes,
        reply_bytes=args.reply_bytes,
        code_bytes=args.code_bytes,
        result_bytes=args.result_bytes,
        work_units=args.work_units,
        expected_reuses=args.reuses,
    )
    weights = CostWeights(time=args.time_weight, money=args.money_weight)
    report = assess(profile, weights=weights)
    print(report.render())
    unanimous = report.unanimous()
    if unanimous:
        print(f"-> {unanimous.upper()} wins in every context")
    return 0


def _report_search_dirs():
    import os

    here = os.path.dirname(__file__)
    return [
        os.path.join("benchmarks", "results"),
        os.path.join(
            here, os.pardir, os.pardir, "benchmarks", "results"
        ),
    ]


def _find_report(name: str):
    """Resolve ``name`` to a report path: a file, or ``<name>.json``
    under benchmarks/results/ (cwd-relative or package-relative)."""
    import os

    if os.path.isfile(name):
        return name
    for directory in _report_search_dirs():
        for candidate in (
            os.path.join(directory, name),
            os.path.join(directory, f"{name}.json"),
        ):
            if os.path.isfile(candidate):
                return candidate
    return None


def _cmd_report(args: argparse.Namespace) -> int:
    import glob
    import json
    import os

    from repro.obs import RunReport

    if args.name is None:
        found = []
        for directory in _report_search_dirs():
            found.extend(sorted(glob.glob(os.path.join(directory, "*.json"))))
            if found:
                break
        if not found:
            print(
                "no run reports found under benchmarks/results/ "
                "(run a benchmark first: pytest benchmarks --quick)"
            )
            return 1
        print(f"{len(found)} run report(s):\n")
        for path in found:
            try:
                report = RunReport.load(path)
            except (json.JSONDecodeError, KeyError, ValueError) as error:
                print(f"  {os.path.basename(path)}  [unreadable: {error}]")
                continue
            spans = len(report.spans)
            metrics = len(report.metrics)
            print(
                f"  {report.name:32s} sim_time={report.env.get('sim_time')} "
                f"metrics={metrics} spans={spans}"
            )
        print("\nrender one with: python -m repro report <name>")
        return 0
    path = _find_report(args.name)
    if path is None:
        print(f"no report named {args.name!r} under benchmarks/results/")
        return 1
    report = RunReport.load(path)
    print(report.render(top=args.top))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    subparsers = parser.add_subparsers(dest="command")

    info = subparsers.add_parser("info", help="version and inventory")
    info.set_defaults(handler=_cmd_info)

    demo = subparsers.add_parser("demo", help="run the quickstart scenario")
    demo.set_defaults(handler=_cmd_demo)

    assess_cmd = subparsers.add_parser(
        "assess", help="design-time paradigm assessment"
    )
    assess_cmd.add_argument("--interactions", type=int, default=10)
    assess_cmd.add_argument("--request-bytes", type=int, default=200)
    assess_cmd.add_argument("--reply-bytes", type=int, default=2000)
    assess_cmd.add_argument("--code-bytes", type=int, default=40_000)
    assess_cmd.add_argument("--result-bytes", type=int, default=500)
    assess_cmd.add_argument("--work-units", type=float, default=20_000)
    assess_cmd.add_argument("--reuses", type=int, default=1)
    assess_cmd.add_argument("--time-weight", type=float, default=1.0)
    assess_cmd.add_argument("--money-weight", type=float, default=1.0)
    assess_cmd.set_defaults(handler=_cmd_assess)

    report_cmd = subparsers.add_parser(
        "report", help="render a machine-readable run report"
    )
    report_cmd.add_argument(
        "name",
        nargs="?",
        default=None,
        help="report name or path (omit to list all available reports)",
    )
    report_cmd.add_argument(
        "--top",
        type=int,
        default=20,
        help="rows per table in the rendered report",
    )
    report_cmd.set_defaults(handler=_cmd_report)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if not getattr(args, "handler", None):
        parser.print_help()
        return 2
    try:
        return args.handler(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        sys.stderr.close()
        return 0


if __name__ == "__main__":
    sys.exit(main())
