"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``info``    — version, subsystems, and experiment inventory;
* ``demo``    — run the quickstart scenario inline (all four paradigms);
* ``assess``  — print a design-time paradigm assessment for a task
  described by flags;
* ``report``  — list or render machine-readable run reports (the JSON
  files the benchmarks write under ``benchmarks/results/``);
* ``compare`` — diff two run reports metric by metric with
  higher/lower-is-better direction annotations; ``--fail-on regress``
  exits 1 on a regression past the threshold (the benchmark gate);
* ``trace``   — causal trace analytics on a report's spans: ``summary``
  (per-paradigm latency attribution), ``critical-path`` (the chain of
  spans that bounds each slow invocation), ``slowest`` (ranked table),
  and ``export --format chrome`` (Perfetto / chrome://tracing JSON);
* ``health``  — render a report's fleet-health section (per-node SLO
  states, breach timeline, flight-recorder dumps); ``--strict`` exits
  1 when any node breached a critical threshold (the chaos CI gate);
* ``matrix``  — expand a run-matrix spec (scenarios × fault plans ×
  seeds) and execute it across a worker pool; ``--strict`` replays
  every job in-process and fails on any byte-level report mismatch;
  ``--out`` writes the merged schema-v3 matrix report.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_info(_args: argparse.Namespace) -> int:
    import repro
    from repro.core.assessment import STANDARD_CONTEXTS

    print(f"repro {repro.__version__} — logical-mobility middleware")
    print("reproduction of Zachariadis, Mascolo & Emmerich, ICDCSW'02\n")
    print("subsystems: sim, net, lmu, security, core, tuplespace, apps,")
    print("            workloads, analysis")
    print("paradigms : cs, rev, cod, agents (+ discovery, lookup, update)")
    print(
        "contexts  : "
        + ", ".join(name for name, _link in STANDARD_CONTEXTS)
    )
    print("experiments: E1-E10 + ablations A1-A4 (see DESIGN.md §3)")
    return 0


def _cmd_demo(_args: argparse.Namespace) -> int:
    import os
    import runpy

    path = os.path.join(
        os.path.dirname(__file__), os.pardir, os.pardir, "examples",
        "quickstart.py",
    )
    if not os.path.exists(path):
        print("examples/quickstart.py not found (installed without examples)")
        return 1
    runpy.run_path(path, run_name="__main__")
    return 0


def _cmd_assess(args: argparse.Namespace) -> int:
    from repro.core import CostWeights, TaskProfile, assess

    profile = TaskProfile(
        interactions=args.interactions,
        request_bytes=args.request_bytes,
        reply_bytes=args.reply_bytes,
        code_bytes=args.code_bytes,
        result_bytes=args.result_bytes,
        work_units=args.work_units,
        expected_reuses=args.reuses,
    )
    weights = CostWeights(time=args.time_weight, money=args.money_weight)
    report = assess(profile, weights=weights)
    print(report.render())
    unanimous = report.unanimous()
    if unanimous:
        print(f"-> {unanimous.upper()} wins in every context")
    return 0


def _report_search_dirs():
    import os

    here = os.path.dirname(__file__)
    return [
        os.path.join("benchmarks", "results"),
        os.path.join(
            here, os.pardir, os.pardir, "benchmarks", "results"
        ),
    ]


def _find_report(name: str):
    """Resolve ``name`` to a report path: a file, or ``<name>.json``
    under benchmarks/results/ (cwd-relative or package-relative)."""
    import os

    if os.path.isfile(name):
        return name
    for directory in _report_search_dirs():
        for candidate in (
            os.path.join(directory, name),
            os.path.join(directory, f"{name}.json"),
        ):
            if os.path.isfile(candidate):
                return candidate
    return None


def _cmd_report(args: argparse.Namespace) -> int:
    import glob
    import json
    import os

    from repro.obs import RunReport

    if args.name is None:
        found = []
        for directory in _report_search_dirs():
            found.extend(sorted(glob.glob(os.path.join(directory, "*.json"))))
            if found:
                break
        if not found:
            print(
                "no run reports found under benchmarks/results/ "
                "(run a benchmark first: pytest benchmarks --quick)"
            )
            return 1
        print(f"{len(found)} run report(s):\n")
        for path in found:
            try:
                report = RunReport.load(path)
            except (json.JSONDecodeError, KeyError, ValueError) as error:
                print(f"  {os.path.basename(path)}  [unreadable: {error}]")
                continue
            spans = len(report.spans)
            metrics = len(report.metrics)
            print(
                f"  {report.name:32s} sim_time={report.env.get('sim_time')} "
                f"metrics={metrics} spans={spans}"
            )
        print("\nrender one with: python -m repro report <name>")
        return 0
    path = _find_report(args.name)
    if path is None:
        print(
            f"error: no report named {args.name!r} — not a file, and not "
            "found under benchmarks/results/ (run a benchmark first, or "
            "list reports with: python -m repro report)",
            file=sys.stderr,
        )
        return 1
    from repro.obs import ReportSchemaError

    try:
        report = RunReport.load_checked(path)
    except ReportSchemaError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(report.render(top=args.top))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.obs import ReportSchemaError
    from repro.obs.diff import diff_report_files

    overrides = {}
    for spec in args.direction or ():
        name, _, direction = spec.partition("=")
        if direction not in ("higher", "lower", "neutral"):
            print(
                f"error: bad --direction {spec!r} "
                "(want NAME=higher|lower|neutral)",
                file=sys.stderr,
            )
            return 2
        overrides[name] = None if direction == "neutral" else direction

    paths = []
    for name in (args.base, args.new):
        path = _find_report(name)
        if path is None:
            print(
                f"error: no report named {name!r} — not a file, and not "
                "found under benchmarks/results/",
                file=sys.stderr,
            )
            return 1
        paths.append(path)
    try:
        diff = diff_report_files(
            paths[0], paths[1],
            threshold=args.threshold,
            overrides=overrides or None,
        )
    except ReportSchemaError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(diff.to_json() + "\n")
    if args.json:
        print(diff.to_json())
    else:
        print(diff.render(all_metrics=args.all))
    if args.fail_on == "regress" and diff.regressions:
        return 1
    if args.fail_on == "change" and (
        diff.regressions
        or diff.improvements
        or any(d.verdict == "changed" for d in diff.deltas)
    ):
        return 1
    return 0


def _load_trace_analysis(name: str):
    """Resolve + load a report and build its trace analysis.

    Returns ``(analysis, report, None)`` or ``(None, None, exit_code)``
    after printing a one-line error.
    """
    from repro.obs import ReportSchemaError, RunReport, TraceAnalysis

    path = _find_report(name)
    if path is None:
        print(
            f"error: no report named {name!r} — not a file, and not "
            "found under benchmarks/results/ (run a benchmark with spans "
            "enabled first, e.g. pytest benchmarks/bench_chaos.py --quick)",
            file=sys.stderr,
        )
        return None, None, 1
    try:
        report = RunReport.load_checked(path)
    except ReportSchemaError as error:
        print(f"error: {error}", file=sys.stderr)
        return None, None, 1
    try:
        analysis = TraceAnalysis.from_report(report)
    except (KeyError, TypeError, ValueError) as error:
        print(
            f"error: {path} has malformed spans: {error}", file=sys.stderr
        )
        return None, None, 1
    if not analysis.spans:
        print(
            f"error: report {report.name!r} carries no spans — rerun the "
            "benchmark with tracing enabled (trace_enabled/spans_enabled)",
            file=sys.stderr,
        )
        return None, None, 1
    return analysis, report, None


def _trace_strict_check(analysis, report) -> int:
    """Apply ``--strict``: exit 1 on reconciliation problems."""
    problems = analysis.problems(report.metrics)
    if problems:
        for problem in problems:
            print(f"strict: {problem}", file=sys.stderr)
        return 1
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    analysis, report, code = _load_trace_analysis(args.name)
    if analysis is None:
        return code
    action = args.action
    if action == "summary":
        print(analysis.render_summary())
    elif action == "critical-path":
        print(analysis.render_critical_path(top=args.top))
    elif action == "slowest":
        print(analysis.render_slowest(count=args.count))
    elif action == "export":
        import json

        document = analysis.to_chrome()
        text = json.dumps(document, indent=2, sort_keys=True)
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(text + "\n")
            print(
                f"wrote {len(document['traceEvents'])} trace events to "
                f"{args.out} (load in Perfetto / chrome://tracing)"
            )
        else:
            print(text)
    if args.strict:
        return _trace_strict_check(analysis, report)
    return 0


def _cmd_health(args: argparse.Namespace) -> int:
    from repro.obs import ReportSchemaError, RunReport

    path = _find_report(args.name)
    if path is None:
        print(
            f"error: no report named {args.name!r} — not a file, and not "
            "found under benchmarks/results/ (run a benchmark with SLOs "
            "armed first, e.g. pytest benchmarks/bench_chaos.py --quick)",
            file=sys.stderr,
        )
        return 1
    try:
        report = RunReport.load_checked(path)
    except ReportSchemaError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    health = report.health
    if not health:
        print(
            f"report {report.name!r} carries no health section — either "
            "the run was not armed (World.enable_health / run_chaos "
            "slos=...) or no SLO ever left 'ok'."
        )
        return 0

    states = health.get("states", {})
    events = health.get("events", [])
    verdicts = health.get("verdicts", {})
    slos = health.get("slos", [])
    flight = report.flight or {}

    print(f"fleet health — {report.name}")
    print(
        f"  {len(slos)} slo(s), {health.get('evaluations', 0)} sweeps, "
        f"{len(events)} transition(s)"
        + (
            f" ({health.get('dropped_events', 0)} dropped)"
            if health.get("dropped_events")
            else ""
        )
    )

    if states:
        print("\n  node states (worst across slos):")
        width = max(len(node) for node in states)
        for node in sorted(states):
            marker = {"ok": " ", "degraded": "~", "critical": "!"}.get(
                states[node], "?"
            )
            print(f"    {marker} {node:<{width}}  {states[node]}")

    if verdicts:
        print("\n  verdicts (slo -> node -> final level):")
        for slo_name in sorted(verdicts):
            nodes = verdicts[slo_name]
            parts = ", ".join(
                f"{node}={nodes[node]}" for node in sorted(nodes)
            )
            print(f"    {slo_name}: {parts}")

    if events:
        shown = events[: args.top]
        print(f"\n  breach timeline (first {len(shown)} of {len(events)}):")
        for event in shown:
            print(
                f"    t={event['time']:<8g} {event['node']:<12} "
                f"{event['slo']:<16} {event['from']} -> {event['to']} "
                f"(value={event['value']:g})"
            )

    if flight:
        print(f"\n  flight-recorder dumps ({len(flight)} node(s)):")
        for node in sorted(flight):
            dump = flight[node]
            print(
                f"    {node}: captured t={dump.get('time')} on "
                f"slo={dump.get('slo')} -> {dump.get('level')}; "
                f"{len(dump.get('events', []))} event(s), "
                f"{len(dump.get('faults', []))} fault(s)"
            )

    if args.strict:
        critical_states = sorted(
            node for node, level in states.items() if level == "critical"
        )
        critical_events = [
            event for event in events if event.get("to") == "critical"
        ]
        if critical_states or critical_events:
            print(
                "strict: critical breach — "
                f"{len(critical_events)} critical transition(s), "
                f"nodes ending critical: {critical_states or 'none'}",
                file=sys.stderr,
            )
            return 1
    return 0


def _parse_param(text: str):
    """``key=value`` with JSON-typed values (bare words stay strings)."""
    import json

    key, sep, raw = text.partition("=")
    if not sep or not key:
        raise argparse.ArgumentTypeError(
            f"bad --param {text!r}: want key=value"
        )
    try:
        return key, json.loads(raw)
    except json.JSONDecodeError:
        return key, raw


def _cmd_matrix(args: argparse.Namespace) -> int:
    import json

    from repro.obs.fileio import atomic_write_text
    from repro.runner import MatrixOrchestrator, RunMatrix, seeds_from_text

    try:
        if args.spec:
            matrix = RunMatrix.load(args.spec)
        else:
            plans = []
            for plan in args.plan or ["default"]:
                if plan in ("default", "none"):
                    plans.append(plan)
                else:  # a path to a serialised FaultPlan JSON file
                    with open(plan) as handle:
                        plans.append(json.load(handle))
            matrix = RunMatrix(
                name=args.name,
                scenarios=tuple(args.scenario or ["chaos"]),
                seeds=seeds_from_text(args.seeds),
                plans=tuple(plans),
                params=dict(args.param or []),
            )
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"error: bad matrix spec: {error}", file=sys.stderr)
        return 2

    try:
        orchestrator = MatrixOrchestrator(
            matrix, workers=args.jobs, strict=args.strict
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(matrix.describe(), file=sys.stderr)
    try:
        result = orchestrator.run()
    except (ValueError, ImportError, AttributeError) as error:
        # Eager scenario resolution: a typo'd name/dotted path fails
        # here as a usage error, before any worker starts.
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.out:
        document = json.dumps(result.report, indent=2, sort_keys=True)
        atomic_write_text(args.out, document + "\n")
        print(f"merged report -> {args.out}", file=sys.stderr)
    if args.json:
        print(json.dumps(result.to_verdict(), indent=2, sort_keys=True))
    else:
        print(result.render())
    return 0 if result.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    subparsers = parser.add_subparsers(dest="command")

    info = subparsers.add_parser("info", help="version and inventory")
    info.set_defaults(handler=_cmd_info)

    demo = subparsers.add_parser("demo", help="run the quickstart scenario")
    demo.set_defaults(handler=_cmd_demo)

    assess_cmd = subparsers.add_parser(
        "assess", help="design-time paradigm assessment"
    )
    assess_cmd.add_argument("--interactions", type=int, default=10)
    assess_cmd.add_argument("--request-bytes", type=int, default=200)
    assess_cmd.add_argument("--reply-bytes", type=int, default=2000)
    assess_cmd.add_argument("--code-bytes", type=int, default=40_000)
    assess_cmd.add_argument("--result-bytes", type=int, default=500)
    assess_cmd.add_argument("--work-units", type=float, default=20_000)
    assess_cmd.add_argument("--reuses", type=int, default=1)
    assess_cmd.add_argument("--time-weight", type=float, default=1.0)
    assess_cmd.add_argument("--money-weight", type=float, default=1.0)
    assess_cmd.set_defaults(handler=_cmd_assess)

    report_cmd = subparsers.add_parser(
        "report", help="render a machine-readable run report"
    )
    report_cmd.add_argument(
        "name",
        nargs="?",
        default=None,
        help="report name or path (omit to list all available reports)",
    )
    report_cmd.add_argument(
        "--top",
        type=int,
        default=20,
        help="rows per table in the rendered report",
    )
    report_cmd.set_defaults(handler=_cmd_report)

    compare_cmd = subparsers.add_parser(
        "compare",
        help="diff two run reports; optionally fail on regressions",
        description=(
            "Compare the metrics of two run reports (names or paths; "
            "names resolve under benchmarks/results/).  Each shared "
            "metric is annotated with its direction (higher/lower is "
            "better, from the repro.obs.diff registry) and judged "
            "improved / regressed / unchanged against the relative "
            "threshold.  Exit codes: 0 ok, 1 regression (with "
            "--fail-on) or unreadable input, 2 usage error."
        ),
    )
    compare_cmd.add_argument("base", help="baseline report name or path")
    compare_cmd.add_argument("new", help="candidate report name or path")
    compare_cmd.add_argument(
        "--threshold",
        type=float,
        default=0.05,
        help="relative change below this fraction is 'unchanged' "
        "(default 0.05)",
    )
    compare_cmd.add_argument(
        "--fail-on",
        choices=["regress", "change"],
        default=None,
        help="exit 1 when a directional metric regresses past the "
        "threshold ('regress'), or on any thresholded change ('change')",
    )
    compare_cmd.add_argument(
        "--direction",
        action="append",
        metavar="NAME=higher|lower|neutral",
        help="override the direction registry for one metric "
        "(repeatable)",
    )
    compare_cmd.add_argument(
        "--json",
        action="store_true",
        help="print the machine-readable verdict instead of tables",
    )
    compare_cmd.add_argument(
        "--out",
        default=None,
        help="also write the JSON verdict to this path (CI artifact)",
    )
    compare_cmd.add_argument(
        "--all",
        action="store_true",
        help="show unchanged metrics too in the rendered table",
    )
    compare_cmd.set_defaults(handler=_cmd_compare)

    trace_cmd = subparsers.add_parser(
        "trace",
        help="causal trace analytics on a run report's spans",
        description=(
            "Reconstruct the causal span DAG of a run report and "
            "attribute every invocation's latency to queue / transit / "
            "service / retry time.  Reports resolve like 'repro "
            "report': a path, or a name under benchmarks/results/.  "
            "Exit codes: 0 ok, 1 unreadable report, missing spans, or "
            "(--strict) reconciliation failure."
        ),
    )
    trace_sub = trace_cmd.add_subparsers(dest="action", required=True)

    def _trace_common(sub):
        sub.add_argument("name", help="report name or path (with spans)")
        sub.add_argument(
            "--strict",
            action="store_true",
            help="exit 1 unless bucket sums reconcile with invocation "
            "durations and the paradigm.<kind>.seconds histograms",
        )
        sub.set_defaults(handler=_cmd_trace)

    trace_summary = trace_sub.add_parser(
        "summary", help="per-paradigm latency attribution tables"
    )
    _trace_common(trace_summary)

    trace_critical = trace_sub.add_parser(
        "critical-path",
        help="the span chain bounding each slow invocation",
    )
    trace_critical.add_argument(
        "--top",
        type=int,
        default=3,
        help="number of slowest invocations to profile (default 3)",
    )
    _trace_common(trace_critical)

    trace_slowest = trace_sub.add_parser(
        "slowest", help="ranked table of the slowest invocations"
    )
    trace_slowest.add_argument(
        "-n",
        "--count",
        type=int,
        default=10,
        help="rows to show (default 10)",
    )
    _trace_common(trace_slowest)

    trace_export = trace_sub.add_parser(
        "export", help="export the trace for external viewers"
    )
    trace_export.add_argument(
        "--format",
        choices=["chrome"],
        default="chrome",
        help="output format (chrome: Perfetto / chrome://tracing JSON)",
    )
    trace_export.add_argument(
        "--out",
        default=None,
        help="write to this path instead of stdout",
    )
    _trace_common(trace_export)

    health_cmd = subparsers.add_parser(
        "health",
        help="fleet-health verdicts from a run report's SLO monitors",
        description=(
            "Render the per-node SLO states, breach timeline, and "
            "flight-recorder dumps captured by an armed run "
            "(World.enable_health / run_chaos slos=...).  Reports "
            "resolve like 'repro report': a path, or a name under "
            "benchmarks/results/.  Exit codes: 0 healthy or merely "
            "degraded, 1 unreadable report or (--strict) any critical "
            "breach."
        ),
    )
    health_cmd.add_argument("name", help="report name or path")
    health_cmd.add_argument(
        "--top",
        type=int,
        default=20,
        help="breach-timeline rows to show (default 20)",
    )
    health_cmd.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when any critical transition occurred or any node "
        "ends the run at the critical level",
    )
    health_cmd.set_defaults(handler=_cmd_health)

    matrix_cmd = subparsers.add_parser(
        "matrix",
        help="run a scenario x plan x seed matrix across a worker pool",
        description=(
            "Expand a run-matrix spec into jobs, execute them (serially "
            "or on a spawn worker pool), and merge the per-job reports "
            "into one deterministic schema-v3 matrix report.  Exit 0 on "
            "success, 1 on any job failure or strict replay mismatch, "
            "2 on a bad spec."
        ),
    )
    matrix_cmd.add_argument(
        "spec", nargs="?",
        help="path to a matrix spec JSON file (omit to build one from "
        "--scenario/--seeds/--plan flags)",
    )
    matrix_cmd.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (default 1: serial, in-process)",
    )
    matrix_cmd.add_argument(
        "--strict", action="store_true",
        help="replay every job in-process and fail on any byte-level "
        "report mismatch (the determinism gate)",
    )
    matrix_cmd.add_argument(
        "--out", metavar="PATH",
        help="write the merged matrix report JSON here (atomic)",
    )
    matrix_cmd.add_argument(
        "--json", action="store_true",
        help="print the machine-readable verdict instead of the table",
    )
    matrix_cmd.add_argument(
        "--name", default="matrix",
        help="matrix name for flag-built specs (default: matrix)",
    )
    matrix_cmd.add_argument(
        "--scenario", action="append", metavar="NAME",
        help="scenario name or module:callable (repeatable; default chaos)",
    )
    matrix_cmd.add_argument(
        "--seeds", default="0", metavar="LIST",
        help="seed list '0,1,5' or range '0..7' (default: 0)",
    )
    matrix_cmd.add_argument(
        "--plan", action="append", metavar="SPEC",
        help="fault plan: 'default', 'none', or a FaultPlan JSON file "
        "(repeatable; default: default)",
    )
    matrix_cmd.add_argument(
        "--param", action="append", type=_parse_param, metavar="K=V",
        help="shared scenario parameter, JSON-typed value (repeatable)",
    )
    matrix_cmd.set_defaults(handler=_cmd_matrix)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if not getattr(args, "handler", None):
        parser.print_help()
        return 2
    try:
        return args.handler(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        sys.stderr.close()
        return 0


if __name__ == "__main__":
    sys.exit(main())
