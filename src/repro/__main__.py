"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``info``    — version, subsystems, and experiment inventory;
* ``demo``    — run the quickstart scenario inline (all four paradigms);
* ``assess``  — print a design-time paradigm assessment for a task
  described by flags.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_info(_args: argparse.Namespace) -> int:
    import repro
    from repro.core.assessment import STANDARD_CONTEXTS

    print(f"repro {repro.__version__} — logical-mobility middleware")
    print("reproduction of Zachariadis, Mascolo & Emmerich, ICDCSW'02\n")
    print("subsystems: sim, net, lmu, security, core, tuplespace, apps,")
    print("            workloads, analysis")
    print("paradigms : cs, rev, cod, agents (+ discovery, lookup, update)")
    print(
        "contexts  : "
        + ", ".join(name for name, _link in STANDARD_CONTEXTS)
    )
    print("experiments: E1-E10 + ablations A1-A4 (see DESIGN.md §3)")
    return 0


def _cmd_demo(_args: argparse.Namespace) -> int:
    import os
    import runpy

    path = os.path.join(
        os.path.dirname(__file__), os.pardir, os.pardir, "examples",
        "quickstart.py",
    )
    if not os.path.exists(path):
        print("examples/quickstart.py not found (installed without examples)")
        return 1
    runpy.run_path(path, run_name="__main__")
    return 0


def _cmd_assess(args: argparse.Namespace) -> int:
    from repro.core import CostWeights, TaskProfile, assess

    profile = TaskProfile(
        interactions=args.interactions,
        request_bytes=args.request_bytes,
        reply_bytes=args.reply_bytes,
        code_bytes=args.code_bytes,
        result_bytes=args.result_bytes,
        work_units=args.work_units,
        expected_reuses=args.reuses,
    )
    weights = CostWeights(time=args.time_weight, money=args.money_weight)
    report = assess(profile, weights=weights)
    print(report.render())
    unanimous = report.unanimous()
    if unanimous:
        print(f"-> {unanimous.upper()} wins in every context")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    subparsers = parser.add_subparsers(dest="command")

    info = subparsers.add_parser("info", help="version and inventory")
    info.set_defaults(handler=_cmd_info)

    demo = subparsers.add_parser("demo", help="run the quickstart scenario")
    demo.set_defaults(handler=_cmd_demo)

    assess_cmd = subparsers.add_parser(
        "assess", help="design-time paradigm assessment"
    )
    assess_cmd.add_argument("--interactions", type=int, default=10)
    assess_cmd.add_argument("--request-bytes", type=int, default=200)
    assess_cmd.add_argument("--reply-bytes", type=int, default=2000)
    assess_cmd.add_argument("--code-bytes", type=int, default=40_000)
    assess_cmd.add_argument("--result-bytes", type=int, default=500)
    assess_cmd.add_argument("--work-units", type=float, default=20_000)
    assess_cmd.add_argument("--reuses", type=int, default=1)
    assess_cmd.add_argument("--time-weight", type=float, default=1.0)
    assess_cmd.add_argument("--money-weight", type=float, default=1.0)
    assess_cmd.set_defaults(handler=_cmd_assess)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if not getattr(args, "handler", None):
        parser.print_help()
        return 2
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
