"""Package metadata.

Plain setup.py (no pyproject.toml) so ``pip install -e .`` takes the
legacy editable path and works offline — PEP 517 builds would try to
fetch build dependencies from an index this environment may not have.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Logical-mobility middleware for mobile computing (reproduction of "
        "Zachariadis, Mascolo & Emmerich, ICDCS 2002 Workshops)"
    ),
    long_description=open("README.md").read(),
    long_description_content_type="text/markdown",
    license="MIT",
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=[],
    extras_require={
        "test": ["pytest", "hypothesis", "pytest-benchmark"],
        "analysis": ["numpy", "networkx"],
    },
    classifiers=[
        "Development Status :: 5 - Production/Stable",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: System :: Distributed Computing",
    ],
    keywords=(
        "mobile-code middleware mobile-agents code-on-demand "
        "remote-evaluation discrete-event-simulation"
    ),
)
